"""Sharded SpMSpV execution: partition-aware engine with scheduled per-shard kernels.

The paper's algorithm is designed around partitioned execution — per-thread
buckets over row strips — yet the :class:`~repro.core.engine.SpMSpVEngine`
runs every multiplication against one monolithic matrix.
:class:`ShardedEngine` closes that gap at the *engine* level:

* the matrix is **row-split** into P strips
  (:func:`repro.formats.partition.row_split`, the §II-F scheme the CombBLAS
  and GraphMat baselines distribute with), each strip owning its own
  persistent :class:`~repro.core.workspace.SpMSpVWorkspace`;
* every multiplication issues one **independent per-strip SpMSpV call**
  (any registered kernel), executed with the single-strip-per-thread
  configuration of the paper's row-split — strips are sync-free, so their
  calls are embarrassingly parallel and are scheduled onto the context's
  thread budget with :func:`repro.parallel.scheduler.schedule` (and
  optionally fanned out on the real thread pool);
* strip outputs live in **disjoint row ranges**, so the full result is a
  plain concatenation — no merge — and is **bit-identical** to the
  unsharded engine: each row's addend stream (the selected columns in the
  input vector's storage order, restricted to the strip) is untouched by
  the split, so every floating-point reduction sees the same addends in
  the same order.  Sorted outputs are byte-identical as stored; unsorted
  outputs are byte-identical as (row, value) pairs (storage order is
  bucket-layout-specific, exactly as across the kernel family);
* :meth:`ShardedEngine.multiply_many` shards fused blocks too: the
  column-union block is packed **once** and shared by every strip's fused
  kernel call, while the (row, vector-id) scatter and the segmented merge
  stay strip-local;
* per-call algorithm choice is priced over the **shard features** of
  :func:`repro.machine.cost_model.shard_features` (shard count, static
  per-strip nnz balance) by the same online :class:`~repro.core.engine.CostFit`
  machinery the monolithic engine uses.

An **async front-end** (:meth:`ShardedEngine.submit` /
:meth:`ShardedEngine.gather`) queues calls and executes them in a
deterministic seeded order (emulating out-of-order completion) while always
returning results in submission order; :class:`EngineGroup` extends the same
interface across *several* matrices, pinning its members in the
:func:`~repro.core.engine.engine_for` cache so long-lived multi-graph
workloads (BFS/PageRank over many graphs) never have their workspaces
silently evicted and rebuilt mid-algorithm.

*Where* the per-strip calls execute is delegated to the context's pluggable
**execution backend** (:mod:`repro.parallel.backends`): the default
``"emulated"`` backend preserves the deterministic in-process loop, while
``"process"`` runs the strips on a persistent ``multiprocessing`` pool whose
workers hold the strip matrices in shared memory — same bits, real cores.
Process-backed engines should be closed (or used as context managers) to
release the pool promptly; a gc finalizer covers the rest.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .._typing import INDEX_DTYPE, as_index_array
from ..errors import BackendError, DimensionMismatchError
from ..formats.coo import COOMatrix
from ..formats.csc import CSCMatrix
from ..formats.delta import DeltaLog, apply_delta, build_patch, splice_overlay
from ..formats.partition import RowSplit, row_split
from ..formats.sparse_vector import SparseVector
from ..formats.vector_block import SparseVectorBlock
from ..machine.cost_model import block_features, cost_model_for, shard_features
from ..parallel.backends import ExecutionBackend, make_backend
from ..parallel.context import ExecutionContext, default_context
from ..parallel.metrics import ExecutionRecord, PhaseRecord, WorkMetrics
from ..parallel.scheduler import Assignment, schedule
from ..semiring import PLUS_TIMES, Semiring
from .engine import (
    COMPACT_FRACTION,
    DEFAULT_CANDIDATES,
    CostFit,
    EngineCall,
    SpMSpVEngine,
    _accepts_workspace,
    _density_seed_choice,
    _mask_keep_fraction,
    _ranked_selection,
    merge_overlay_record,
    pin_engine,
    unpin_engine,
)
from .result import SpMSpVResult
from .vector_ops import check_mask, check_operands
from .workspace import SpMSpVWorkspace


class ShardedEngine:
    """Row-split, per-strip-scheduled SpMSpV executor for one matrix.

    Parameters
    ----------
    matrix:
        The matrix every multiplication of this engine uses.
    shards:
        Partition width P; the matrix is row-split into P strips (strips may
        be empty when ``shards > nrows``).
    ctx:
        Execution context.  ``num_threads`` is the budget the strip calls
        are scheduled onto; each strip call itself runs the paper's
        row-split configuration (one thread per strip, sync-free).
        ``ctx.backend`` selects the strip executor (``"emulated"`` |
        ``"process"``); ``ctx.backend_workers`` caps the process pool.
    algorithm:
        Default per-call policy: a registered kernel name, or ``"auto"``
        for adaptive selection over the shard-feature cost fits.
    candidates, density_threshold, explore_every:
        As in :class:`~repro.core.engine.SpMSpVEngine`.
    """

    def __init__(self, matrix: CSCMatrix, shards: int,
                 ctx: Optional[ExecutionContext] = None, *,
                 algorithm: str = "auto",
                 candidates: Sequence[str] = DEFAULT_CANDIDATES,
                 density_threshold: Optional[float] = None,
                 explore_every: int = 8):
        from .dispatch import AUTO_DENSITY_SWITCH  # late: avoids import cycle

        if int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.matrix = matrix
        self.ctx = ctx if ctx is not None else default_context()
        self.algorithm = algorithm
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("engine needs at least one candidate algorithm")
        self.density_threshold = (density_threshold if density_threshold is not None
                                  else AUTO_DENSITY_SWITCH)
        self.explore_every = int(explore_every)
        self.split: RowSplit = row_split(matrix, int(shards))
        #: per-strip execution context: the paper's row-split runs one strip
        #: per thread with no intra-strip parallelism (§II-F)
        self.shard_ctx = replace(self.ctx, num_threads=1)
        #: pluggable strip executor (emulated in-process loop by default, or
        #: a persistent shared-memory worker pool with ``backend="process"``)
        self.backend: ExecutionBackend = make_backend(
            self.ctx.backend, strips=self.split.strips,
            shard_ctx=self.shard_ctx, dtype=matrix.dtype,
            use_thread_pool=self.ctx.use_thread_pool,
            workers=self.ctx.backend_workers)
        #: the emulated backend's local per-strip workspaces; empty for
        #: backends whose workspaces live out-of-process
        self.workspaces = getattr(self.backend, "workspaces", [])
        strip_nnz = np.array([strip.nnz for strip in self.split.strips], dtype=np.float64)
        mean_nnz = float(strip_nnz.mean()) if len(strip_nnz) else 0.0
        #: static max/mean stored-entry balance of the row partition
        self.nnz_balance = float(strip_nnz.max() / mean_nnz) if mean_nnz > 0 else 1.0
        self.history: List[EngineCall] = []
        self.max_history = 4096
        self.total_calls = 0
        self.total_cost_ms = 0.0
        self.total_explored = 0
        self._models: Dict[str, CostFit] = {
            name: CostFit(dim=4) for name in self.candidates}
        self._block_fits: Dict[str, CostFit] = {
            mode: CostFit(dim=7) for mode in ("fused", "looped")}
        self._price = cost_model_for(self.ctx.platform)
        self._modeled_calls = 0
        self._modeled_blocks = 0
        self._batches = 0
        self._fused_batches = 0
        #: per-strip pending edge updates, routed by the row partition; each
        #: strip compacts independently once its delta crosses break-even
        self.deltas: List[DeltaLog] = [
            DeltaLog(strip.shape) for strip in self.split.strips]
        self.compact_fraction = COMPACT_FRACTION
        self.compactions = 0
        self._patches: List[Optional[Tuple[CSCMatrix, np.ndarray]]] = \
            [None] * self.split.num_parts
        #: parent-side workspaces for the (tiny) strip patch corrections —
        #: the workers keep serving the immutable base strips
        self._patch_ws: Dict[int, SpMSpVWorkspace] = {}
        self._strip_row_nnz: List[Optional[np.ndarray]] = \
            [None] * self.split.num_parts
        #: queued async calls: (ticket, vector, kwargs), drained by gather()
        self._pending: List[Tuple[int, SparseVector, Dict]] = []
        self._ticket = 0
        #: tickets in the order gather() actually executed them (async tests)
        self.execution_log: List[int] = []
        # bookkeeping is reentrant (multiply_many loops over multiply)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # adaptive selection over shard features
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.split.num_parts

    def call_features(self, x: SparseVector) -> np.ndarray:
        """The (bias, nnz(x), P, balance) features of one sharded call."""
        return shard_features(x.nnz, self.num_shards, self.nnz_balance)

    def select_algorithm(self, x: SparseVector) -> Tuple[str, bool]:
        """Pick the kernel for one input vector; returns ``(name, explored)``.

        Same policy as the monolithic engine (shared helpers): the §V
        density seed hands over to the shard-feature fits once trained.
        """
        phi = self.call_features(x)
        choice = _ranked_selection(self._models, phi, self.explore_every,
                                   self._modeled_calls + 1)
        if choice is not None:
            self._modeled_calls += 1
            return choice
        return _density_seed_choice(self.candidates, x.nnz / max(x.n, 1),
                                    self.density_threshold), False

    # ------------------------------------------------------------------ #
    # shard plumbing
    # ------------------------------------------------------------------ #
    def _slice_mask(self, mask: Optional[SparseVector]
                    ) -> List[Optional[SparseVector]]:
        """Slice a row-space mask into the strips' local row spaces.

        Entry order is preserved, so each strip's packed bitmap / finalize
        select behaves exactly like the full mask restricted to its rows.
        """
        if mask is None:
            return [None] * self.num_shards
        out: List[Optional[SparseVector]] = []
        for lo, hi in self.split.row_ranges:
            keep = (mask.indices >= lo) & (mask.indices < hi)
            out.append(SparseVector(hi - lo, mask.indices[keep] - lo,
                                    mask.values[keep], sorted=mask.sorted,
                                    check=False))
        return out

    def _concatenate(self, vectors: List[SparseVector], sorted_flag: bool
                     ) -> SparseVector:
        """Concatenate strip outputs back into the full row space (no merge)."""
        idx_parts = []
        val_parts = []
        for (lo, _hi), v in zip(self.split.row_ranges, vectors):
            if v.nnz:
                idx_parts.append((v.indices + lo).astype(INDEX_DTYPE, copy=False))
                val_parts.append(v.values)
        if not idx_parts:
            return SparseVector(self.matrix.nrows, np.empty(0, dtype=INDEX_DTYPE),
                                np.empty(0, dtype=vectors[0].dtype if vectors
                                         else np.float64),
                                sorted=sorted_flag, check=False)
        return SparseVector(self.matrix.nrows, np.concatenate(idx_parts),
                            np.concatenate(val_parts), sorted=sorted_flag,
                            check=False)

    def _schedule_shards(self, costs: List[float]) -> Assignment:
        """Assign the strip calls to the context's threads (makespan model)."""
        return schedule(costs, self.ctx.num_threads, self.ctx.scheduling)

    def _merge_records(self, records: List[ExecutionRecord],
                       assignment: Assignment, algorithm: str,
                       info: Dict) -> ExecutionRecord:
        """Fold the strip records into one record of the sharded execution.

        Phases are matched by name across strips; within a phase, the
        threads' metrics are the per-strip totals summed over the strips the
        schedule assigned to each thread.  Strips are sync-free, so the
        merged phase is parallel with the barrier count of a single strip —
        the cost model then prices the makespan of the strip schedule, which
        is exactly the parallel completion time of the sharded execution.
        """
        merged = ExecutionRecord(algorithm=algorithm,
                                 num_threads=self.ctx.num_threads, info=info)
        base = max(records, key=lambda r: len(r.phases))
        for phase in base.phases:
            per_strip: List[Optional[PhaseRecord]] = []
            for r in records:
                try:
                    per_strip.append(r.phase(phase.name))
                except KeyError:
                    per_strip.append(None)
            out = PhaseRecord(
                name=phase.name, parallel=True,
                barriers=max(p.barriers for p in per_strip if p is not None))
            for items in assignment.items_per_thread:
                contributions: List[WorkMetrics] = []
                for s in items:
                    p = per_strip[s]
                    if p is None:
                        continue
                    contributions.extend(p.thread_metrics)
                    contributions.append(p.serial_metrics)
                if contributions:
                    out.thread_metrics.append(WorkMetrics.sum(contributions))
            merged.add_phase(out)
        return merged

    def _run_strip_calls(self, name: str, x: SparseVector, *, semiring: Semiring,
                         sorted_output: Optional[bool],
                         mask_slices: List[Optional[SparseVector]],
                         mask_complement: bool, kwargs: Dict
                         ) -> List[SpMSpVResult]:
        """One independent kernel call per strip, on the engine's backend."""
        return self.backend.run_multiply(
            name, x, semiring=semiring, sorted_output=sorted_output,
            mask_slices=mask_slices, mask_complement=mask_complement,
            kwargs=kwargs)

    # ------------------------------------------------------------------ #
    # dynamic updates (per-strip delta overlay + compaction)
    # ------------------------------------------------------------------ #
    def apply_updates(self, rows, cols, values=None) -> Dict[str, object]:
        """Record edge updates, routed to the owning strips' delta logs.

        ``values=None`` deletes the listed edges.  Updates are visible on the
        next multiply: the workers keep serving the immutable base strips
        while the parent splices in tiny strip-local patch corrections.  A
        strip whose delta-touched rows cross ``compact_fraction`` of its
        nonzeros is rebuilt **alone** — the other strips' workspaces and
        shared-memory slabs stay untouched.  Raises :class:`BackendError`
        while async calls are queued (``submit`` without ``gather``): a
        queued call must run against the matrix it was submitted to.
        """
        with self._lock:
            if self._pending:
                raise BackendError(
                    f"apply_updates with {len(self._pending)} async call(s) "
                    "queued; gather() them first")
            rows = as_index_array(rows)
            cols = as_index_array(cols)
            m, n = self.matrix.shape
            if len(rows) and (rows.min() < 0 or rows.max() >= m):
                raise DimensionMismatchError(f"update row out of range for {m} rows")
            if len(cols) and (cols.min() < 0 or cols.max() >= n):
                raise DimensionMismatchError(f"update col out of range for {n} cols")
            if values is not None:
                values = np.asarray(values, dtype=np.float64)
                if values.ndim == 0:
                    values = np.broadcast_to(values, rows.shape).copy()
            lows = np.array([lo for lo, _hi in self.split.row_ranges])
            strip_of = np.searchsorted(lows, rows, side="right") - 1
            compacted: List[int] = []
            for s in np.unique(strip_of).tolist():
                sel = strip_of == s
                lo = self.split.row_ranges[s][0]
                if values is None:
                    self.deltas[s].delete_edges(rows[sel] - lo, cols[sel])
                else:
                    self.deltas[s].set_edges(rows[sel] - lo, cols[sel], values[sel])
                self._patches[s] = None
                if self._maybe_compact_strip_locked(s):
                    compacted.append(s)
            return {"applied": int(len(rows)),
                    "delta_entries": sum(d.entries for d in self.deltas),
                    "compacted": bool(compacted),
                    "compacted_strips": compacted}

    def _overlay_nnz_strip_locked(self, s: int) -> int:
        """Upper bound on strip ``s``'s patch nnz (the per-multiply overlay tax)."""
        if self._strip_row_nnz[s] is None:
            self._strip_row_nnz[s] = self.split.strips[s].row_counts()
        return (int(self._strip_row_nnz[s][self.deltas[s].touched_rows()].sum())
                + self.deltas[s].entries)

    def _maybe_compact_strip_locked(self, s: int) -> bool:
        if self.deltas[s].is_empty:
            return False
        threshold = self.compact_fraction * max(self.split.strips[s].nnz, 1)
        if self._overlay_nnz_strip_locked(s) <= threshold:
            return False
        return self._compact_strip_locked(s)

    def _compact_strip_locked(self, s: int) -> bool:
        if self.deltas[s].is_empty:
            return False
        new_strip = apply_delta(self.split.strips[s], self.deltas[s])
        self.split.strips[s] = new_strip
        self.backend.update_strip(s, new_strip)
        self.deltas[s] = DeltaLog(new_strip.shape)
        self._patches[s] = None
        self._strip_row_nnz[s] = None
        self.compactions += 1
        return True

    def compact(self, strip: Optional[int] = None) -> bool:
        """Fold pending deltas into their base strips now; True if any ran."""
        with self._lock:
            if self._pending:
                raise BackendError("compact with async calls queued; gather() first")
            if strip is not None:
                return self._compact_strip_locked(strip)
            return any([self._compact_strip_locked(s)
                        for s in range(self.num_shards)])

    def effective_matrix(self) -> CSCMatrix:
        """The full-row-space matrix this engine currently computes with."""
        with self._lock:
            rows_parts, cols_parts, vals_parts = [], [], []
            for (lo, _hi), strip, delta in zip(self.split.row_ranges,
                                               self.split.strips, self.deltas):
                eff = strip if delta.is_empty else apply_delta(strip, delta)
                coo = eff.to_coo()
                rows_parts.append(coo.rows + lo)
                cols_parts.append(coo.cols)
                vals_parts.append(coo.vals)
            return CSCMatrix.from_coo(
                COOMatrix(self.matrix.shape,
                          np.concatenate(rows_parts) if rows_parts else [],
                          np.concatenate(cols_parts) if cols_parts else [],
                          np.concatenate(vals_parts) if vals_parts else [],
                          check=False),
                sum_duplicates=False)

    def delta_stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "events": sum(len(d) for d in self.deltas),
                "entries": sum(d.entries for d in self.deltas),
                "per_strip_entries": [d.entries for d in self.deltas],
                "compactions": self.compactions,
            }

    def _patch_pair_strip_locked(self, s: int
                                 ) -> Optional[Tuple[CSCMatrix, np.ndarray]]:
        if self.deltas[s].is_empty:
            return None
        if self._patches[s] is None:
            self._patches[s] = build_patch(self.split.strips[s], self.deltas[s])
        return self._patches[s]

    def _patch_workspace_locked(self, s: int) -> SpMSpVWorkspace:
        ws = self._patch_ws.get(s)
        if ws is None:
            strip = self.split.strips[s]
            ws = SpMSpVWorkspace(strip.nrows, dtype=strip.dtype)
            self._patch_ws[s] = ws
        return ws

    def _overlay_strip_outs_locked(self, outs: List[SpMSpVResult], name: str, x,
                                   *, semiring: Semiring,
                                   sorted_output: Optional[bool],
                                   mask_slices: List[Optional[SparseVector]],
                                   mask_complement: bool,
                                   kwargs: Dict) -> List[SpMSpVResult]:
        """Splice parent-side patch corrections into the strips' base outputs."""
        from .dispatch import get_algorithm  # late: avoids import cycle

        outs = list(outs)
        for s in range(self.num_shards):
            pair = self._patch_pair_strip_locked(s)
            if pair is None:
                continue
            patch, touched = pair
            fn = get_algorithm(name)
            kw = dict(kwargs)
            if _accepts_workspace(fn):
                kw["workspace"] = self._patch_workspace_locked(s)
            pres = fn(patch, x, self.shard_ctx, semiring=semiring,
                      sorted_output=sorted_output, mask=mask_slices[s],
                      mask_complement=mask_complement, **kw)
            outs[s] = SpMSpVResult(
                vector=splice_overlay(outs[s].vector, pres.vector, touched),
                record=merge_overlay_record(outs[s].record, pres.record),
                info=dict(outs[s].info, delta_patch_nnz=patch.nnz))
        return outs

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def multiply(self, x: SparseVector, *,
                 semiring: Semiring = PLUS_TIMES,
                 sorted_output: Optional[bool] = None,
                 mask: Optional[SparseVector] = None,
                 mask_complement: bool = False,
                 algorithm: Optional[str] = None,
                 _batch: Optional[int] = None,
                 _explored: bool = False,
                 **kwargs) -> SpMSpVResult:
        """Run ``y <- A x`` as P independent strip multiplications.

        Bit-identical to the unsharded engine (sorted outputs byte-for-byte,
        unsorted outputs pair-for-pair); the combined record models the
        strip schedule's makespan on the context's threads.
        """
        with self._lock:
            plan = self._plan_call(
                x, semiring=semiring, sorted_output=sorted_output, mask=mask,
                mask_complement=mask_complement, algorithm=algorithm,
                _batch=_batch, _explored=_explored, **kwargs)
            outs = self._run_strip_calls(
                plan["name"], x, semiring=semiring,
                sorted_output=plan["resolved_sorted"],
                mask_slices=plan["mask_slices"],
                mask_complement=mask_complement, kwargs=kwargs)
            return self._finish_call(plan, outs)

    def _plan_call(self, x: SparseVector, *,
                   semiring: Semiring = PLUS_TIMES,
                   sorted_output: Optional[bool] = None,
                   mask: Optional[SparseVector] = None,
                   mask_complement: bool = False,
                   algorithm: Optional[str] = None,
                   _batch: Optional[int] = None,
                   _explored: bool = False, **kwargs) -> Dict:
        """Validate + select + resolve one call, without executing it.

        This is the submit half of a multiplication: everything that must
        happen *before* the strip calls go out (operand/mask checks,
        adaptive kernel selection against the current fits, sorted-output
        resolution, mask slicing) — so the pipelined :meth:`gather` can
        broadcast a call to the backend and plan the next one while workers
        are still running.  The bookkeeping half is :meth:`_finish_call`.
        """
        from .dispatch import get_algorithm  # late: avoids import cycle

        check_operands(self.matrix, x)
        check_mask(mask, self.matrix.nrows)
        requested = algorithm if algorithm is not None else self.algorithm
        explored = _explored
        if requested == "auto":
            name, explored = self.select_algorithm(x)
        else:
            name = requested
        get_algorithm(name)  # validate the kernel name before dispatching
        resolved_sorted = (sorted_output if sorted_output is not None
                           else (x.sorted and self.ctx.sorted_vectors))
        return {"x": x, "name": name, "requested": requested,
                "explored": explored, "resolved_sorted": resolved_sorted,
                "semiring": semiring, "mask_slices": self._slice_mask(mask),
                "mask_complement": mask_complement, "kwargs": kwargs,
                "batch": _batch, "t0": time.perf_counter()}

    def _finish_call(self, plan: Dict, outs: List[SpMSpVResult]) -> SpMSpVResult:
        """Fold strip results into one result + all per-call bookkeeping.

        Runs in gather order (= the deterministic execution order), so the
        history, cost observations and adaptive-fit updates are identical
        across backends regardless of how the strip calls overlapped.
        """
        x = plan["x"]
        name = plan["name"]
        resolved_sorted = plan["resolved_sorted"]
        if any(not d.is_empty for d in self.deltas):
            outs = self._overlay_strip_outs_locked(
                outs, name, x, semiring=plan["semiring"],
                sorted_output=resolved_sorted,
                mask_slices=plan["mask_slices"],
                mask_complement=plan["mask_complement"],
                kwargs=plan["kwargs"])
        y = self._concatenate([o.vector for o in outs], resolved_sorted)
        dfs = [float(o.info.get("df", o.record.info.get("df", 0.0))) for o in outs]
        assignment = self._schedule_shards([df + 1.0 for df in dfs])
        record = self._merge_records(
            [o.record for o in outs], assignment,
            algorithm=f"sharded[{self.num_shards}]:{outs[0].record.algorithm}",
            info={"m": self.matrix.nrows, "n": self.matrix.ncols,
                  "nnz_A": self.matrix.nnz, "f": x.nnz,
                  "df": sum(dfs), "nnz_y": y.nnz,
                  "shards": self.num_shards,
                  "shard_imbalance": assignment.imbalance(),
                  "early_mask": outs[0].record.info.get("early_mask", False)})
        record.wall_time_s = time.perf_counter() - plan["t0"]

        cost_ms = self._price.record_time_ms(record)
        if name in self._models:
            self._models[name].observe(self.call_features(x), cost_ms)
        self.history.append(EngineCall(
            index=self.total_calls, algorithm=name, requested=plan["requested"],
            f=x.nnz, density=x.nnz / max(x.n, 1), cost_ms=cost_ms,
            explored=plan["explored"], batch=plan["batch"]))
        self.total_calls += 1
        self.total_cost_ms += cost_ms
        self.total_explored += int(plan["explored"])
        if len(self.history) > 2 * self.max_history:
            del self.history[:len(self.history) - self.max_history]
        return SpMSpVResult(vector=y, record=record,
                            info={"f": x.nnz, "df": sum(dfs),
                                  "nnz_y": y.nnz, "shards": self.num_shards})

    # ------------------------------------------------------------------ #
    # blocked execution
    # ------------------------------------------------------------------ #
    def _select_block_mode(self, phi: np.ndarray, k: int, sharing: float
                           ) -> Tuple[str, bool]:
        """Fused-vs-looped for one block (same policy as the monolithic engine)."""
        choice = _ranked_selection(self._block_fits, phi, self.explore_every,
                                   self._modeled_blocks + 1)
        if choice is not None:
            self._modeled_blocks += 1
            return choice
        if k >= 4 or sharing >= 1.5:
            return "fused", False
        return "looped", False

    def multiply_block(self, block: SparseVectorBlock, *,
                       semiring: Semiring = PLUS_TIMES,
                       sorted_output: Optional[bool] = None,
                       masks: Optional[Sequence[Optional[SparseVector]]] = None,
                       mask_complement: bool = False,
                       algorithm: Optional[str] = None,
                       block_mode: str = "auto",
                       block_merge: str = "segmented") -> List[SpMSpVResult]:
        """Sharded execution of an already-packed block (serving entry point).

        Mirrors :meth:`SpMSpVEngine.multiply_block`: the caller's pack is
        reused by the fused path (one shared block for every strip) instead
        of being re-derived; results are bit-identical to
        :meth:`multiply_many` over ``block.to_vectors()``.
        """
        return self.multiply_many(
            block.to_vectors(), semiring=semiring, sorted_output=sorted_output,
            masks=masks, mask_complement=mask_complement, algorithm=algorithm,
            block_mode=block_mode, block_merge=block_merge, _block=block)

    def multiply_many(self, xs: Sequence[SparseVector], *,
                      semiring: Semiring = PLUS_TIMES,
                      sorted_output: Optional[bool] = None,
                      masks: Optional[Sequence[Optional[SparseVector]]] = None,
                      mask_complement: bool = False,
                      algorithm: Optional[str] = None,
                      block_mode: str = "auto",
                      block_merge: str = "segmented",
                      _block: Optional[SparseVectorBlock] = None,
                      **kwargs) -> List[SpMSpVResult]:
        """Sharded blocked execution of one matrix against many input vectors.

        The fused path packs the :class:`SparseVectorBlock` **once** — its
        column union, value slab and replay positions are row-independent —
        and hands the same block to every strip's fused kernel call, so only
        the (row, vector-id) scatter and the segmented merge are paid per
        strip.  Per-vector masks are sliced per strip and folded into each
        strip's scatter.  Outputs are bit-identical to the unsharded
        ``multiply_many`` in every mode.
        """
        if block_mode not in ("auto", "fused", "looped"):
            raise ValueError(f"block_mode must be auto|fused|looped, got {block_mode!r}")
        if block_merge not in ("segmented", "global"):
            raise ValueError(
                f"block_merge must be segmented|global, got {block_merge!r}")
        xs = list(xs)
        if masks is not None and len(masks) != len(xs):
            raise ValueError(f"got {len(xs)} vectors but {len(masks)} masks")
        with self._lock:
            batch = self._batches
            self._batches += 1
            requested = algorithm if algorithm is not None else self.algorithm
            explored = False
            if requested == "auto" and xs:
                densest = max(xs, key=lambda x: x.nnz)
                requested, explored = self.select_algorithm(densest)

            eligible = (requested == "bucket" and len(xs) >= 2 and not kwargs
                        and len({x.dtype for x in xs}) == 1)
            mode = "looped"
            block_explored = False
            phi: Optional[np.ndarray] = None
            if eligible:
                total_nnz, union_nnz = SpMSpVEngine._block_stats(xs)
                phi = block_features(
                    len(xs), total_nnz, union_nnz,
                    mask_keep=_mask_keep_fraction(masks, mask_complement,
                                                  len(xs), self.matrix.nrows),
                    segments=len(xs) * self.shard_ctx.num_buckets * self.num_shards)
                if block_mode == "auto":
                    mode, block_explored = self._select_block_mode(
                        phi, len(xs), total_nnz / max(union_nnz, 1))
                else:
                    mode = block_mode

            if mode == "fused":
                return self._multiply_many_fused(
                    xs, phi, batch=batch, semiring=semiring,
                    sorted_output=sorted_output, masks=masks,
                    mask_complement=mask_complement, requested=requested,
                    explored=explored or block_explored,
                    block_merge=block_merge, block=_block)

            t0 = time.perf_counter()
            results = []
            for i, x in enumerate(xs):
                results.append(self.multiply(
                    x, semiring=semiring, sorted_output=sorted_output,
                    mask=masks[i] if masks is not None else None,
                    mask_complement=mask_complement, algorithm=requested,
                    _batch=batch, _explored=explored and i == 0, **kwargs))
            if eligible:
                self._block_fits["looped"].observe(
                    phi, (time.perf_counter() - t0) * 1e3)
            return results

    def _multiply_many_fused(self, xs: List[SparseVector],
                             phi: Optional[np.ndarray], *, batch: int,
                             semiring: Semiring, sorted_output: Optional[bool],
                             masks: Optional[Sequence[Optional[SparseVector]]],
                             mask_complement: bool, requested: str,
                             explored: bool,
                             block_merge: str,
                             block: Optional[SparseVectorBlock] = None
                             ) -> List[SpMSpVResult]:
        """Fused block execution across strips: one shared block, P fused calls."""
        if masks is not None:
            for mask in masks:
                check_mask(mask, self.matrix.nrows)
        t0 = time.perf_counter()
        k = len(xs)
        if block is None:
            block = SparseVectorBlock.from_vectors(xs)
        if phi is None:
            phi = block_features(
                k, block.total_nnz, block.union_nnz,
                mask_keep=_mask_keep_fraction(masks, mask_complement, k,
                                              self.matrix.nrows),
                segments=k * self.shard_ctx.num_buckets * self.num_shards)
        if masks is not None:
            sliced = [self._slice_mask(mask) for mask in masks]  # [vector][strip]
            strip_masks = [[sliced[i][s] for i in range(k)]
                           for s in range(self.num_shards)]
        else:
            strip_masks = [None] * self.num_shards

        per_strip = self.backend.run_block(
            block, semiring=semiring, sorted_output=sorted_output,
            strip_masks=strip_masks, mask_complement=mask_complement,
            block_merge=block_merge)
        if any(not d.is_empty for d in self.deltas):
            from .spmspv_block import spmspv_bucket_block  # late: import cycle

            per_strip = [list(rs) for rs in per_strip]
            for s in range(self.num_shards):
                pair = self._patch_pair_strip_locked(s)
                if pair is None:
                    continue
                patch, touched = pair
                presults = spmspv_bucket_block(
                    patch, block, self.shard_ctx, semiring=semiring,
                    sorted_output=sorted_output, masks=strip_masks[s],
                    mask_complement=mask_complement, merge=block_merge,
                    workspace=self._patch_workspace_locked(s))
                per_strip[s] = [
                    SpMSpVResult(
                        vector=splice_overlay(r.vector, p.vector, touched),
                        record=merge_overlay_record(r.record, p.record),
                        info=dict(r.info, delta_patch_nnz=patch.nnz))
                    for r, p in zip(per_strip[s], presults)]
        # equal per-vector share of the batch wall time, frozen before the
        # bookkeeping below (as the fused kernel itself apportions)
        wall_share_s = (time.perf_counter() - t0) / max(k, 1)

        # one schedule for the whole batch: strips are the work items
        strip_dfs = [sum(float(r.info.get("df", 0.0)) for r in rs)
                     for rs in per_strip]
        assignment = self._schedule_shards([df + 1.0 for df in strip_dfs])
        nnzs = block.nnz_per_vector()
        results: List[SpMSpVResult] = []
        for i in range(k):
            outs = [per_strip[s][i] for s in range(self.num_shards)]
            resolved_sorted = (sorted_output if sorted_output is not None
                               else (block.sorted_flags[i]
                                     and self.ctx.sorted_vectors))
            y = self._concatenate([o.vector for o in outs], resolved_sorted)
            df_i = sum(float(o.info.get("df", 0.0)) for o in outs)
            record = self._merge_records(
                [o.record for o in outs], assignment,
                algorithm=f"sharded[{self.num_shards}]:{outs[0].record.algorithm}",
                info={"m": self.matrix.nrows, "n": self.matrix.ncols,
                      "nnz_A": self.matrix.nnz, "f": int(nnzs[i]),
                      "df": df_i, "nnz_y": y.nnz, "fused": True,
                      "block_k": k, "merge": block_merge,
                      "shards": self.num_shards})
            record.wall_time_s = wall_share_s
            cost_ms = self._price.record_time_ms(record)
            self.history.append(EngineCall(
                index=self.total_calls, algorithm="bucket_block",
                requested=requested, f=int(nnzs[i]),
                density=int(nnzs[i]) / max(block.n, 1), cost_ms=cost_ms,
                explored=explored and i == 0, batch=batch, fused=True))
            self.total_calls += 1
            self.total_cost_ms += cost_ms
            results.append(SpMSpVResult(
                vector=y, record=record,
                info={"f": int(nnzs[i]), "df": df_i, "nnz_y": y.nnz,
                      "fused": True, "merge": block_merge,
                      "shards": self.num_shards}))
        self._fused_batches += 1
        self._block_fits["fused"].observe(phi, (time.perf_counter() - t0) * 1e3)
        self.total_explored += int(explored)
        if len(self.history) > 2 * self.max_history:
            del self.history[:len(self.history) - self.max_history]
        return results

    # ------------------------------------------------------------------ #
    # async front-end
    # ------------------------------------------------------------------ #
    def submit(self, x: SparseVector, **kwargs) -> int:
        """Queue one multiplication; returns its ticket.

        Nothing executes until :meth:`gather` — including validation, so a
        bad call (wrong vector length, wrong mask dimension) raises from the
        failing strip at gather time, exactly like a remote shard would fail
        its batch.
        """
        with self._lock:
            ticket = self._ticket
            self._ticket += 1
            self._pending.append((ticket, x, kwargs))
            return ticket

    @property
    def pending(self) -> int:
        """Number of queued (not yet gathered) calls."""
        return len(self._pending)

    def gather(self) -> List[SpMSpVResult]:
        """Execute every queued call and return their results in submit order.

        Execution order is a deterministic function of the context's seed
        (a seeded permutation, emulating out-of-order async completion);
        results are independent of it because queued calls are independent.
        The executed tickets are appended to :attr:`execution_log`.  The
        queue is cleared even when a strip call raises — the exception
        propagates to the caller and later submissions start fresh.

        Execution is **pipelined**: up to ``ctx.backend_inflight`` calls are
        submitted to the backend before the oldest is drained, so on the
        process backend consecutive multiplies overlap across the worker
        pool instead of barriering per call.  All per-call bookkeeping
        (history, cost observations, adaptive-fit updates) happens at drain
        time in execution order, so the pipeline depth never changes what
        any backend records — and the emulated backend, whose submissions
        are deferred thunks, remains bit-identical.
        """
        with self._lock:
            pending, self._pending = self._pending, []
            if not pending:
                return []
            rng = np.random.default_rng(self.ctx.seed + len(pending))
            order = rng.permutation(len(pending))
            window = max(1, self.ctx.backend_inflight)
            #: (ticket, plan, token) in execution order, oldest first
            inflight: List[Tuple[int, Dict, object]] = []
            results: Dict[int, SpMSpVResult] = {}

            def drain_one() -> None:
                ticket, plan, token = inflight.pop(0)
                results[ticket] = self._finish_call(
                    plan, self.backend.gather_multiply(token))

            try:
                for pos in order.tolist():
                    ticket, x, kwargs = pending[pos]
                    self.execution_log.append(ticket)
                    plan = self._plan_call(x, **kwargs)
                    token = self.backend.submit_multiply(
                        plan["name"], x, semiring=plan["semiring"],
                        sorted_output=plan["resolved_sorted"],
                        mask_slices=plan["mask_slices"],
                        mask_complement=plan["mask_complement"],
                        kwargs=plan["kwargs"])
                    inflight.append((ticket, plan, token))
                    if len(inflight) >= window:
                        drain_one()
                while inflight:
                    drain_one()
            except BaseException:
                # a failed plan or strip call abandons whatever is in flight;
                # the queue was already cleared, so later submissions restart
                for _ticket, _plan, token in inflight:
                    self.backend.abandon(token)
                raise
            return [results[ticket] for ticket, _x, _kw in pending]

    # ------------------------------------------------------------------ #
    # introspection (consumed by repro.analysis.reporting and detach())
    # ------------------------------------------------------------------ #
    def algorithms_used(self) -> List[str]:
        """Distinct kernels executed, in first-use order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for call in self.history:
            seen.setdefault(call.algorithm, None)
        return list(seen)

    @property
    def switch_count(self) -> int:
        """How many times consecutive calls used different algorithms."""
        return sum(1 for a, b in zip(self.history, self.history[1:])
                   if a.algorithm != b.algorithm)

    def close(self) -> None:
        """Release backend resources (worker pool, shared memory; idempotent).

        A no-op for the emulated backend.  Engines are also cleaned up by a
        gc finalizer, so forgetting to close leaks nothing past collection —
        but long-lived processes that churn through process-backed engines
        should close (or ``with``) them promptly.
        """
        self.backend.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def workspace_stats(self) -> Dict[str, float]:
        """Aggregate reuse statistics over the per-strip workspaces.

        For out-of-process backends these are the latest stats the workers
        piggybacked on their replies (fresh-workspace values before any
        call)."""
        stats = self.backend.workspace_stats()
        acq = sum(s["acquisitions"] for s in stats)
        alloc = sum(s["allocations"] for s in stats)
        saved = max(acq - alloc, 0)
        return {
            "acquisitions": acq,
            "allocations": alloc,
            "allocations_saved": saved,
            "reuse_fraction": saved / acq if acq else 0.0,
            "bucket_capacity": sum(s["bucket_capacity"] for s in stats),
            "spa_rows": self.matrix.nrows,
            "block_capacity": sum(s["block_capacity"] for s in stats),
        }

    def health_stats(self) -> Dict[str, object]:
        """Backend resilience accounting (deaths, retries, fallbacks,
        deadline hits) — all zero for in-process backends and for a healthy
        pool; see :meth:`.parallel.backends.ExecutionBackend.health_stats`."""
        return self.backend.health_stats()

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics of the engine's lifetime (for reporting)."""
        return {
            "calls": self.total_calls,
            "batches": self._batches,
            "fused_batches": self._fused_batches,
            "algorithms_used": self.algorithms_used(),
            "switches": self.switch_count,
            "explored_calls": self.total_explored,
            "total_cost_ms": self.total_cost_ms,
            "shards": self.num_shards,
            "nnz_balance": self.nnz_balance,
            "workspace": self.workspace_stats(),
            "comm": self.backend.comm_stats(),
            "health": self.backend.health_stats(),
            "delta_entries": sum(d.entries for d in self.deltas),
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ShardedEngine(matrix={self.matrix.nrows}x{self.matrix.ncols}, "
                f"shards={self.num_shards}, algorithm={self.algorithm!r}, "
                f"calls={self.total_calls})")


class EngineGroup:
    """Pinned engines over several matrices with interleaved async execution.

    The group holds one engine per matrix — the **cached**
    :func:`~repro.core.engine.engine_for` engine, pinned so the 8-entry LRU
    never evicts a member mid-algorithm no matter how many other matrices
    the process touches, or a :class:`ShardedEngine` when ``shards`` is
    given.  :meth:`submit`/:meth:`gather` interleave queued calls across the
    members in a deterministic seeded order (round-robin-free emulation of
    concurrent multi-graph progress), always returning results in submit
    order — the shape of BFS/PageRank advancing over several graphs at once.

    Use as a context manager (or call :meth:`close`) to release the pins.
    """

    def __init__(self, matrices: Union[Sequence[CSCMatrix], Mapping[object, CSCMatrix]],
                 ctx: Optional[ExecutionContext] = None, *,
                 shards: Optional[int] = None,
                 seed: Optional[int] = None):
        self.ctx = ctx if ctx is not None else default_context()
        self.seed = int(seed) if seed is not None else self.ctx.seed
        if isinstance(matrices, Mapping):
            items = list(matrices.items())
        else:
            items = list(enumerate(matrices))
        if not items:
            raise ValueError("EngineGroup needs at least one matrix")
        self._engines: "OrderedDict[object, Union[SpMSpVEngine, ShardedEngine]]" = \
            OrderedDict()
        self._pinned: List[CSCMatrix] = []
        for key, matrix in items:
            if key in self._engines:
                raise ValueError(f"duplicate EngineGroup key {key!r}")
            if shards is not None:
                self._engines[key] = ShardedEngine(matrix, shards, self.ctx)
            else:
                self._engines[key] = pin_engine(matrix, self.ctx)
                self._pinned.append(matrix)
        self._pending: List[Tuple[int, object, SparseVector, Dict]] = []
        self._ticket = 0
        #: (ticket, key) pairs in actual execution order (determinism tests)
        self.execution_log: List[Tuple[int, object]] = []
        self._closed = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def keys(self) -> List[object]:
        return list(self._engines)

    def engine(self, key) -> Union[SpMSpVEngine, ShardedEngine]:
        """The member engine for ``key`` (raises ``KeyError`` if absent)."""
        return self._engines[key]

    def multiply(self, key, x: SparseVector, **kwargs) -> SpMSpVResult:
        """Immediate (non-queued) multiplication against one member."""
        return self._engines[key].multiply(x, **kwargs)

    def multiply_many(self, key, xs: Sequence[SparseVector],
                      **kwargs) -> List[SpMSpVResult]:
        """Immediate blocked multiplication against one member (the serving
        layer's coalesced entry point); see
        :meth:`SpMSpVEngine.multiply_many`."""
        return self._engines[key].multiply_many(xs, **kwargs)

    def multiply_block(self, key, block: SparseVectorBlock,
                       **kwargs) -> List[SpMSpVResult]:
        """Blocked multiplication of an already-packed block against one
        member; see :meth:`SpMSpVEngine.multiply_block`."""
        return self._engines[key].multiply_block(block, **kwargs)

    def apply_updates(self, key, rows, cols, values=None) -> Dict[str, object]:
        """Record edge updates against member ``key`` (``values=None`` deletes);
        see :meth:`SpMSpVEngine.apply_updates` / :meth:`ShardedEngine.apply_updates`."""
        return self._engines[key].apply_updates(rows, cols, values)

    def submit(self, key, x: SparseVector, **kwargs) -> int:
        """Queue one multiplication against member ``key``; returns its ticket."""
        with self._lock:
            if self._closed:
                raise RuntimeError("EngineGroup is closed")
            if key not in self._engines:
                raise KeyError(f"unknown EngineGroup key {key!r}")
            ticket = self._ticket
            self._ticket += 1
            self._pending.append((ticket, key, x, kwargs))
            return ticket

    @property
    def pending(self) -> int:
        return len(self._pending)

    def gather(self) -> List[SpMSpVResult]:
        """Execute every queued call, interleaved across members, in a
        deterministic seeded order; results come back in submit order.

        The queue is cleared even when a call raises; the exception
        propagates.  Executed ``(ticket, key)`` pairs are appended to
        :attr:`execution_log`.
        """
        with self._lock:
            pending, self._pending = self._pending, []
            if not pending:
                return []
            rng = np.random.default_rng(self.seed + len(pending))
            order = rng.permutation(len(pending))
            results: Dict[int, SpMSpVResult] = {}
            for pos in order.tolist():
                ticket, key, x, kwargs = pending[pos]
                self.execution_log.append((ticket, key))
                results[ticket] = self._engines[key].multiply(x, **kwargs)
            return [results[ticket] for ticket, _k, _x, _kw in pending]

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[object, Dict[str, object]]:
        """Per-member engine summaries."""
        return {key: engine.summary() for key, engine in self._engines.items()}

    def close(self) -> None:
        """Release the members' cache pins and backend pools (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for matrix in self._pinned:
                unpin_engine(matrix, self.ctx)
            self._pinned.clear()
            for engine in self._engines.values():
                if isinstance(engine, ShardedEngine):
                    engine.close()

    def __enter__(self) -> "EngineGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._engines)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"EngineGroup(members={len(self._engines)}, "
                f"pending={len(self._pending)}, closed={self._closed})")
