"""Buckets and the ESTIMATE-BUCKETS preprocessing step (Algorithm 2).

Step 1 of the SpMSpV-bucket algorithm stores every scaled matrix entry
``(i, x(j)·A(i,j))`` in the bucket responsible for row ``i``
(``bucket = ⌊i·nb/m⌋``).  Several threads may target the same bucket, so the
paper first runs the ESTIMATE-BUCKETS pass (Algorithm 2) to count, for every
(thread, bucket) pair, how many entries the thread will insert.  An exclusive
prefix sum of those counts then gives each thread a private, disjoint write
region inside each bucket, making Step 1 lock-free.

:class:`BucketStore` is preallocated once (its capacity is bounded by
``nnz(A)``, §III-A "Memory allocation") and reused across multiplications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .._typing import INDEX_DTYPE, as_index_array
from ..errors import ReproError


def bucket_of_rows(rows: np.ndarray, num_buckets: int, num_rows: int) -> np.ndarray:
    """Vectorized ``⌊i·nb/m⌋`` destination-bucket computation (Algorithm 1, line 5)."""
    rows = as_index_array(rows)
    if num_rows <= 0:
        return np.zeros(len(rows), dtype=INDEX_DTYPE)
    return (rows * num_buckets) // num_rows


#: digit width of the staged radix argsort: 15 bits keeps every digit value
#: inside a *signed* int16, the widest integer key NumPy still radix-sorts
_DIGIT_BITS = 15
_DIGIT_MASK = (1 << _DIGIT_BITS) - 1


def stable_row_argsort(rows: np.ndarray, num_rows: int,
                       staging: np.ndarray | None = None) -> np.ndarray:
    """Stable argsort of row ids, radix-sorted by staged 15-bit digits.

    NumPy dispatches ``kind="stable"`` to a linear-time radix sort only for
    integer keys of at most 16 bits; wider keys fall back to timsort — the
    O(p·log p) comparison sorting the bucket algorithm's merges exist to
    avoid.  Row ids are bounded by the matrix's row count, so they are
    sorted as one int16 digit when ``num_rows`` fits in 15 bits, or as two
    staged LSB radix passes (low digit, then high digit of the partially
    ordered keys) up to 30 bits; beyond that the plain stable argsort is
    used.  A stable sort's permutation is unique, so every path returns
    exactly ``np.argsort(rows, kind="stable")``.

    ``staging`` is an optional reusable int16 scratch array of at least
    ``len(rows)`` elements (see
    :attr:`repro.core.workspace.BlockBuffers.sort_keys`).
    """
    p = len(rows)
    if p <= 1:
        return np.arange(p, dtype=np.intp)
    if num_rows > (1 << (2 * _DIGIT_BITS)):
        return np.argsort(rows, kind="stable")
    if staging is None or len(staging) < p:
        staging = np.empty(p, dtype=np.int16)
    digits = staging[:p]
    if num_rows <= (1 << _DIGIT_BITS):
        digits[:] = rows
        return np.argsort(digits, kind="stable")
    digits[:] = rows & _DIGIT_MASK
    order = np.argsort(digits, kind="stable")
    digits[:] = rows[order] >> _DIGIT_BITS
    return order[np.argsort(digits, kind="stable")]


def bucket_row_ranges(num_buckets: int, num_rows: int) -> List[Tuple[int, int]]:
    """The half-open row range covered by each bucket (inverse of :func:`bucket_of_rows`)."""
    ranges = []
    for k in range(num_buckets):
        lo = -(-k * num_rows // num_buckets)           # ceil(k*m/nb)
        hi = -(-(k + 1) * num_rows // num_buckets)     # ceil((k+1)*m/nb)
        ranges.append((lo, hi))
    return ranges


@dataclass
class BucketOffsets:
    """Output of ESTIMATE-BUCKETS: per-(thread, bucket) counts and write offsets."""

    #: counts[i, k] = number of entries thread i will insert into bucket k (Boffset of Alg. 2)
    counts: np.ndarray
    #: bucket_starts[k] = position where bucket k starts in the flat bucket store
    bucket_starts: np.ndarray
    #: write_starts[i, k] = first flat position thread i writes inside bucket k
    write_starts: np.ndarray

    @property
    def num_threads(self) -> int:
        return self.counts.shape[0]

    @property
    def num_buckets(self) -> int:
        return self.counts.shape[1]

    @property
    def total_entries(self) -> int:
        return int(self.counts.sum())

    def bucket_sizes(self) -> np.ndarray:
        """Total entries per bucket (summed over threads)."""
        return self.counts.sum(axis=0).astype(INDEX_DTYPE)

    def bucket_slice(self, k: int) -> Tuple[int, int]:
        """Flat half-open range ``[lo, hi)`` occupied by bucket ``k``."""
        lo = int(self.bucket_starts[k])
        hi = int(self.bucket_starts[k + 1]) if k + 1 < len(self.bucket_starts) \
            else int(self.total_entries)
        return lo, hi


def compute_offsets(counts: np.ndarray) -> BucketOffsets:
    """Turn per-(thread, bucket) counts into disjoint write regions.

    The layout places buckets contiguously (bucket 0 first) and, inside each
    bucket, thread regions in thread order — matching the prefix-sum
    construction the paper uses to avoid synchronization.
    """
    counts = np.asarray(counts, dtype=INDEX_DTYPE)
    if counts.ndim != 2:
        raise ReproError("counts must be a (threads x buckets) matrix")
    per_bucket = counts.sum(axis=0)
    bucket_starts = np.zeros(len(per_bucket) + 1, dtype=INDEX_DTYPE)
    np.cumsum(per_bucket, out=bucket_starts[1:])
    # exclusive prefix over threads within each bucket
    within = np.zeros_like(counts)
    if counts.shape[0] > 1:
        within[1:, :] = np.cumsum(counts[:-1, :], axis=0)
    write_starts = within + bucket_starts[:-1][None, :]
    return BucketOffsets(counts=counts, bucket_starts=bucket_starts[:-1],
                         write_starts=write_starts)


class BucketStore:
    """Preallocated storage for the (row index, scaled value) pairs of all buckets."""

    __slots__ = ("capacity", "rows", "values", "offsets", "filled")

    def __init__(self, capacity: int, dtype=np.float64):
        self.capacity = int(capacity)
        self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
        self.values = np.empty(self.capacity, dtype=dtype)
        self.offsets: BucketOffsets | None = None
        self.filled = 0

    def ensure_capacity(self, needed: int, dtype=None) -> None:
        """Grow the backing arrays if a multiplication needs more room."""
        if needed > self.capacity or (dtype is not None and dtype != self.values.dtype):
            self.capacity = max(needed, self.capacity)
            self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
            self.values = np.empty(self.capacity,
                                   dtype=dtype if dtype is not None else self.values.dtype)

    def attach_offsets(self, offsets: BucketOffsets, dtype=None) -> None:
        """Bind the ESTIMATE-BUCKETS result for the upcoming multiplication."""
        self.ensure_capacity(offsets.total_entries, dtype=dtype)
        self.offsets = offsets
        self.filled = offsets.total_entries

    def write_thread_entries(self, thread_id: int, bucket_ids: np.ndarray,
                             rows: np.ndarray, values: np.ndarray) -> int:
        """Write one thread's entries into its private regions (lock-free insertion).

        ``bucket_ids[k]`` is the destination bucket of entry ``k``.  Entries
        are laid out bucket-by-bucket inside the thread's disjoint regions, so
        no other thread can touch the same positions.  Returns the number of
        entries written.
        """
        if self.offsets is None:
            raise ReproError("attach_offsets must be called before writing entries")
        if len(bucket_ids) == 0:
            return 0
        order = np.argsort(bucket_ids, kind="stable")
        b_sorted = bucket_ids[order]
        counts = np.bincount(b_sorted, minlength=self.offsets.num_buckets).astype(INDEX_DTYPE)
        expected = self.offsets.counts[thread_id]
        if not np.array_equal(counts, expected):
            raise ReproError(
                "bucket counts differ from the ESTIMATE-BUCKETS preprocessing result; "
                "lock-free insertion would race")
        first_pos = np.zeros(self.offsets.num_buckets, dtype=INDEX_DTYPE)
        np.cumsum(counts[:-1], out=first_pos[1:])
        local_rank = np.arange(len(b_sorted), dtype=INDEX_DTYPE) - first_pos[b_sorted]
        dest = self.offsets.write_starts[thread_id][b_sorted] + local_rank
        self.rows[dest] = rows[order]
        self.values[dest] = values[order]
        return int(len(dest))

    def bucket_entries(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return views of the (rows, values) stored in bucket ``k``."""
        if self.offsets is None:
            raise ReproError("no offsets attached")
        lo, hi = self.offsets.bucket_slice(k)
        return self.rows[lo:hi], self.values[lo:hi]

    def __repr__(self) -> str:  # pragma: no cover
        nb = self.offsets.num_buckets if self.offsets is not None else 0
        return f"BucketStore(capacity={self.capacity}, filled={self.filled}, buckets={nb})"
