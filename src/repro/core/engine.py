"""The unified SpMSpV execution engine.

:class:`SpMSpVEngine` is the one place where three cross-cutting concerns
live, instead of being re-plumbed by every graph algorithm:

* **Persistent workspaces** (§III-A "Memory allocation") — the engine owns
  one :class:`~repro.core.workspace.SpMSpVWorkspace` per matrix and threads
  it through every kernel call, so an iterative algorithm performs zero
  per-iteration ``BucketStore``/SPA allocations.
* **Adaptive dispatch** (§V future work) — with ``algorithm="auto"`` each
  call picks between the vector-driven bucket algorithm and the
  matrix-driven GraphMat baseline.  The choice is *seeded* by the paper's
  density heuristic (switch once ``nnz(x)/n`` passes the threshold) and then
  *refined online*: every executed kernel's
  :class:`~repro.parallel.metrics.ExecutionRecord` is priced with the
  platform cost model, and per-algorithm linear cost models ``cost ≈ α + β·f``
  are fit from those observations.  Once every candidate has enough samples
  the learned models take over from the static threshold, with a periodic
  exploration call keeping the losing model fresh.
* **Batched multi-vector execution** — :meth:`SpMSpVEngine.multiply_many`
  runs a block of input vectors (multi-source BFS frontiers, blocked
  PageRank deltas) through one dispatch decision and one shared workspace.

:func:`engine_for` caches engines per ``(matrix, context)`` so the
backward-compatible :func:`repro.core.dispatch.spmspv` entry point also
executes through the engine.
"""

from __future__ import annotations

import inspect
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..formats.csc import CSCMatrix
from ..formats.sparse_vector import SparseVector
from ..machine.cost_model import cost_model_for
from ..parallel.context import ExecutionContext, default_context
from ..semiring import PLUS_TIMES, Semiring
from .result import SpMSpVResult
from .workspace import SpMSpVWorkspace

#: candidate algorithms the adaptive policy arbitrates between by default:
#: one vector-driven (bucket) and one matrix-driven (GraphMat) kernel.
DEFAULT_CANDIDATES: Tuple[str, ...] = ("bucket", "graphmat")

#: algorithms whose work is driven by the matrix structure, not nnz(x)
MATRIX_DRIVEN = frozenset({"graphmat"})


@lru_cache(maxsize=None)
def _accepts_workspace(fn) -> bool:
    """Whether a registered kernel supports the shared ``workspace=`` signature."""
    try:
        return "workspace" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


class OnlineCostModel:
    """Per-algorithm online fit of ``cost_ms ≈ alpha + beta · nnz(x)``.

    A running least-squares over the (f, cost) observations harvested from
    execution records.  Two samples at distinct f are enough to predict; the
    engine keeps exploring so the fit tracks the workload.
    """

    __slots__ = ("count", "sum_f", "sum_c", "sum_ff", "sum_fc")

    def __init__(self):
        self.count = 0
        self.sum_f = 0.0
        self.sum_c = 0.0
        self.sum_ff = 0.0
        self.sum_fc = 0.0

    def observe(self, f: int, cost_ms: float) -> None:
        self.count += 1
        self.sum_f += f
        self.sum_c += cost_ms
        self.sum_ff += f * f
        self.sum_fc += f * cost_ms

    def predict(self, f: int) -> Optional[float]:
        """Predicted cost at frontier size ``f`` (None until enough samples)."""
        if self.count < 2:
            return None
        denom = self.count * self.sum_ff - self.sum_f * self.sum_f
        if denom <= 0.0:  # all samples at the same f: fall back to the mean
            return self.sum_c / self.count
        beta = (self.count * self.sum_fc - self.sum_f * self.sum_c) / denom
        alpha = (self.sum_c - beta * self.sum_f) / self.count
        return max(alpha + beta * f, 0.0)


@dataclass
class EngineCall:
    """One dispatch decision of the engine (the unit of the reporting layer)."""

    index: int
    algorithm: str
    #: what the caller asked for ('auto' or a fixed name)
    requested: str
    f: int
    density: float
    cost_ms: float
    #: True when the adaptive policy deliberately ran the predicted runner-up
    explored: bool = False
    #: batch id for calls issued through multiply_many, else None
    batch: Optional[int] = None


class SpMSpVEngine:
    """Persistent-workspace, adaptively-dispatched SpMSpV executor for one matrix.

    Parameters
    ----------
    matrix:
        The matrix every multiplication of this engine uses.
    ctx:
        Execution context shared by all calls (defaults to a single-threaded
        Edison context).
    algorithm:
        Default policy: a registered kernel name, or ``"auto"`` for adaptive
        per-call selection.  Overridable per call.
    candidates:
        The algorithms the adaptive policy arbitrates between.
    density_threshold:
        The §V density heuristic seeding the adaptive choice before the
        online cost models have enough samples.
    explore_every:
        Once the cost models are trained, every ``explore_every``-th adaptive
        call runs the predicted runner-up instead of the winner, keeping its
        model fresh.  0 disables exploration.
    workspace:
        An externally owned workspace to share (e.g. between engines over the
        same matrix); by default the engine allocates its own.
    """

    def __init__(self, matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None, *,
                 algorithm: str = "auto",
                 candidates: Sequence[str] = DEFAULT_CANDIDATES,
                 density_threshold: Optional[float] = None,
                 explore_every: int = 8,
                 workspace: Optional[SpMSpVWorkspace] = None):
        from .dispatch import AUTO_DENSITY_SWITCH  # late: avoids import cycle

        self.matrix = matrix
        self.ctx = ctx if ctx is not None else default_context()
        self.algorithm = algorithm
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("engine needs at least one candidate algorithm")
        self.density_threshold = (density_threshold if density_threshold is not None
                                  else AUTO_DENSITY_SWITCH)
        self.explore_every = int(explore_every)
        self.workspace = (workspace if workspace is not None
                          else SpMSpVWorkspace(matrix.nrows, dtype=matrix.dtype))
        #: recent dispatch decisions (trimmed beyond max_history; lifetime
        #: aggregates live in total_calls / total_cost_ms / total_explored)
        self.history: List[EngineCall] = []
        self.max_history = 4096
        self.total_calls = 0
        self.total_cost_ms = 0.0
        self.total_explored = 0
        self._models: Dict[str, OnlineCostModel] = {
            name: OnlineCostModel() for name in self.candidates}
        self._price = cost_model_for(self.ctx.platform)
        self._modeled_calls = 0
        self._batches = 0
        # one multiplication at a time per engine: concurrent callers of the
        # spmspv shim share this engine's workspace, which is not reentrant
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # adaptive selection
    # ------------------------------------------------------------------ #
    def _seed_choice(self, density: float) -> str:
        """The paper's §V heuristic: matrix-driven once the vector densifies."""
        matrix_driven = [c for c in self.candidates if c in MATRIX_DRIVEN]
        vector_driven = [c for c in self.candidates if c not in MATRIX_DRIVEN]
        if density >= self.density_threshold and matrix_driven:
            return matrix_driven[0]
        return vector_driven[0] if vector_driven else self.candidates[0]

    def select_algorithm(self, x: SparseVector) -> Tuple[str, bool]:
        """Pick the algorithm for one input vector; returns ``(name, explored)``."""
        f = x.nnz
        density = f / max(x.n, 1)
        predictions = {name: self._models[name].predict(f) for name in self.candidates}
        if all(p is not None for p in predictions.values()):
            ranked = sorted(self.candidates, key=lambda name: predictions[name])
            self._modeled_calls += 1
            if (self.explore_every > 0 and len(ranked) > 1
                    and self._modeled_calls % self.explore_every == 0):
                return ranked[1], True
            return ranked[0], False
        return self._seed_choice(density), False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def multiply(self, x: SparseVector, *,
                 semiring: Semiring = PLUS_TIMES,
                 sorted_output: Optional[bool] = None,
                 mask: Optional[SparseVector] = None,
                 mask_complement: bool = False,
                 algorithm: Optional[str] = None,
                 workspace: Optional[object] = None,
                 _batch: Optional[int] = None,
                 _explored: bool = False,
                 **kwargs) -> SpMSpVResult:
        """Run ``y <- A x`` through the engine: select, execute, observe."""
        from .dispatch import get_algorithm  # late: avoids import cycle

        with self._lock:
            requested = algorithm if algorithm is not None else self.algorithm
            explored = _explored
            if requested == "auto":
                name, explored = self.select_algorithm(x)
            else:
                name = requested
            fn = get_algorithm(name)

            if workspace is None:
                workspace = self.workspace
            if _accepts_workspace(fn):
                kwargs = dict(kwargs, workspace=workspace)
            result = fn(self.matrix, x, self.ctx, semiring=semiring,
                        sorted_output=sorted_output, mask=mask,
                        mask_complement=mask_complement, **kwargs)

            cost_ms = self._price.record_time_ms(result.record)
            if name in self._models:
                self._models[name].observe(x.nnz, cost_ms)
            self.history.append(EngineCall(
                index=self.total_calls, algorithm=name, requested=requested,
                f=x.nnz, density=x.nnz / max(x.n, 1), cost_ms=cost_ms,
                explored=explored, batch=_batch))
            self.total_calls += 1
            self.total_cost_ms += cost_ms
            self.total_explored += int(explored)
            if len(self.history) > 2 * self.max_history:
                # cached engines live for the process: keep memory bounded
                del self.history[:len(self.history) - self.max_history]
            return result

    def multiply_many(self, xs: Sequence[SparseVector], *,
                      semiring: Semiring = PLUS_TIMES,
                      sorted_output: Optional[bool] = None,
                      masks: Optional[Sequence[Optional[SparseVector]]] = None,
                      mask_complement: bool = False,
                      algorithm: Optional[str] = None,
                      **kwargs) -> List[SpMSpVResult]:
        """Blocked execution of one matrix against many input vectors.

        The whole batch shares the engine's workspace and — under ``"auto"``
        — a single dispatch decision, made for the *densest* vector of the
        block (the worst case for a vector-driven kernel).  This is the
        multi-source BFS / blocked PageRank entry point.
        """
        xs = list(xs)
        if masks is not None and len(masks) != len(xs):
            raise ValueError(f"got {len(xs)} vectors but {len(masks)} masks")
        batch = self._batches
        self._batches += 1
        requested = algorithm if algorithm is not None else self.algorithm
        explored = False
        if requested == "auto" and xs:
            densest = max(xs, key=lambda x: x.nnz)
            requested, explored = self.select_algorithm(densest)
        results = []
        for i, x in enumerate(xs):
            results.append(self.multiply(
                x, semiring=semiring, sorted_output=sorted_output,
                mask=masks[i] if masks is not None else None,
                mask_complement=mask_complement, algorithm=requested,
                # one exploration decision per batch: flag only its first call
                _batch=batch, _explored=explored and i == 0, **kwargs))
        return results

    # ------------------------------------------------------------------ #
    # introspection (consumed by repro.analysis.reporting)
    # ------------------------------------------------------------------ #
    def algorithms_used(self) -> List[str]:
        """Distinct kernels executed, in first-use order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for call in self.history:
            seen.setdefault(call.algorithm, None)
        return list(seen)

    @property
    def switch_count(self) -> int:
        """How many times consecutive calls used different algorithms."""
        return sum(1 for a, b in zip(self.history, self.history[1:])
                   if a.algorithm != b.algorithm)

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics of the engine's lifetime (for reporting).

        ``algorithms_used`` and ``switches`` are computed over the retained
        history window (``max_history`` recent calls); the scalar totals are
        lifetime counters.
        """
        return {
            "calls": self.total_calls,
            "batches": self._batches,
            "algorithms_used": self.algorithms_used(),
            "switches": self.switch_count,
            "explored_calls": self.total_explored,
            "total_cost_ms": self.total_cost_ms,
            "workspace": self.workspace.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVEngine(matrix={self.matrix.nrows}x{self.matrix.ncols}, "
                f"algorithm={self.algorithm!r}, calls={len(self.history)})")


# --------------------------------------------------------------------------- #
# engine cache backing the repro.core.dispatch.spmspv shim
# --------------------------------------------------------------------------- #
_ENGINE_CACHE: "OrderedDict[tuple, SpMSpVEngine]" = OrderedDict()
_ENGINE_CACHE_LIMIT = 8


def engine_for(matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None
               ) -> SpMSpVEngine:
    """The cached engine serving ``spmspv`` calls for ``(matrix, ctx)``.

    Entries pin the matrix (so ids cannot be recycled while cached) and are
    evicted LRU beyond a small limit; repeated calls on the same matrix —
    the shape of every iterative algorithm and benchmark — therefore reuse
    one workspace and one adaptive state.  Shim engines run with exploration
    disabled: ``spmspv(..., algorithm="auto")`` on identical inputs must pick
    the predicted-best kernel deterministically (benchmarks time it), so the
    deliberate runner-up calls are an opt-in of explicitly constructed
    engines.
    """
    ctx = ctx if ctx is not None else default_context()
    key = (id(matrix), ctx)
    engine = _ENGINE_CACHE.get(key)
    if engine is not None and engine.matrix is matrix:
        _ENGINE_CACHE.move_to_end(key)
        return engine
    engine = SpMSpVEngine(matrix, ctx, explore_every=0)
    _ENGINE_CACHE[key] = engine
    while len(_ENGINE_CACHE) > _ENGINE_CACHE_LIMIT:
        _ENGINE_CACHE.popitem(last=False)
    return engine


def clear_engine_cache() -> None:
    """Drop all cached engines (exposed for tests)."""
    _ENGINE_CACHE.clear()
