"""The unified SpMSpV execution engine.

:class:`SpMSpVEngine` is the one place where three cross-cutting concerns
live, instead of being re-plumbed by every graph algorithm:

* **Persistent workspaces** (§III-A "Memory allocation") — the engine owns
  one :class:`~repro.core.workspace.SpMSpVWorkspace` per matrix and threads
  it through every kernel call, so an iterative algorithm performs zero
  per-iteration ``BucketStore``/SPA allocations.
* **Adaptive dispatch** (§V future work) — with ``algorithm="auto"`` each
  call picks between the vector-driven bucket algorithm and the
  matrix-driven GraphMat baseline.  The choice is *seeded* by the paper's
  density heuristic (switch once ``nnz(x)/n`` passes the threshold) and then
  *refined online*: every executed kernel's
  :class:`~repro.parallel.metrics.ExecutionRecord` is priced with the
  platform cost model, and per-algorithm linear cost models ``cost ≈ α + β·f``
  are fit from those observations.  Once every candidate has enough samples
  the learned models take over from the static threshold, with a periodic
  exploration call keeping the losing model fresh.
* **Batched multi-vector execution** — :meth:`SpMSpVEngine.multiply_many`
  runs a block of input vectors (multi-source BFS frontiers, blocked
  PageRank deltas) through one dispatch decision and one shared workspace,
  and — when the block cost model favours it — through the genuinely fused
  block kernel (:func:`repro.core.spmspv_block.spmspv_bucket_block`): one
  gather and one scatter for the whole vector block instead of a per-vector
  loop.

:func:`engine_for` caches engines per ``(matrix, context)`` so the
backward-compatible :func:`repro.core.dispatch.spmspv` entry point also
executes through the engine.
"""

from __future__ import annotations

import inspect
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..formats.csc import CSCMatrix
from ..formats.delta import DeltaLog, apply_delta, build_patch, splice_overlay
from ..formats.sparse_vector import SparseVector
from ..formats.vector_block import SparseVectorBlock
from ..machine.cost_model import block_features, cost_model_for, dispatch_features
from ..parallel.context import ExecutionContext, default_context
from ..parallel.metrics import ExecutionRecord, PhaseRecord
from ..semiring import PLUS_TIMES, Semiring
from .result import SpMSpVResult
from .workspace import SpMSpVWorkspace

#: candidate algorithms the adaptive policy arbitrates between by default:
#: one vector-driven (bucket) and one matrix-driven (GraphMat) kernel.
DEFAULT_CANDIDATES: Tuple[str, ...] = ("bucket", "graphmat")

#: algorithms whose work is driven by the matrix structure, not nnz(x)
MATRIX_DRIVEN = frozenset({"graphmat"})

#: default compaction break-even: rebuild a matrix (or strip) once the
#: delta-touched rows carry more than this fraction of its nonzeros.  The
#: overlay pays ~c1·patch_nnz extra kernel work per multiply while a rebuild
#: pays ~c2·nnz·log(nnz) once, so over an expected query horizon H the
#: break-even is patch_nnz > (c2·log(nnz)/(H·c1))·nnz — a constant fraction
#: for the steady-state serving workloads this repo targets.
COMPACT_FRACTION = 0.25


def merge_overlay_record(base: ExecutionRecord,
                         patch: ExecutionRecord) -> ExecutionRecord:
    """One record for a base ⊕ delta overlay execution.

    The patch kernel's phases are appended under ``delta:``-prefixed names so
    the cost model prices the overlay's extra work (and reporting can see
    it), without colliding with the base phases that per-strip record merging
    matches by name.
    """
    phases = list(base.phases)
    phases.extend(PhaseRecord(name="delta:" + p.name, parallel=p.parallel,
                              thread_metrics=p.thread_metrics,
                              serial_metrics=p.serial_metrics,
                              barriers=p.barriers)
                  for p in patch.phases)
    return ExecutionRecord(algorithm=base.algorithm,
                           num_threads=base.num_threads, phases=phases,
                           info=dict(base.info),
                           wall_time_s=base.wall_time_s + patch.wall_time_s)


@lru_cache(maxsize=None)
def _accepts_workspace(fn) -> bool:
    """Whether a registered kernel supports the shared ``workspace=`` signature."""
    try:
        return "workspace" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


class CostFit:
    """Online multi-feature least-squares fit of ``cost ≈ w · φ``.

    A running accumulation of the normal equations over observed
    ``(features, cost)`` pairs, solved with a small ridge term so the
    naturally collinear features (``nnz(x)``, density and nzc all grow
    together on one matrix) stay well-posed.  Two samples are enough to
    predict — the seed heuristic hands over early and the engine keeps
    exploring so the fit tracks the workload.  This generalizes the previous
    single-feature ``alpha + beta · nnz(x)`` fit to the richer
    (nnz(x), density, nzc) features of
    :func:`repro.machine.cost_model.dispatch_features` and the block
    features of :func:`repro.machine.cost_model.block_features`.
    """

    __slots__ = ("dim", "count", "xtx", "xty", "_weights")

    def __init__(self, dim: int = 4):
        self.dim = int(dim)
        self.count = 0
        self.xtx = np.zeros((self.dim, self.dim))
        self.xty = np.zeros(self.dim)
        self._weights: Optional[np.ndarray] = None

    def observe(self, features: np.ndarray, cost_ms: float) -> None:
        phi = np.asarray(features, dtype=np.float64)
        self.count += 1
        self.xtx += np.outer(phi, phi)
        self.xty += phi * cost_ms
        self._weights = None  # refit lazily on the next prediction

    def weights(self) -> Optional[np.ndarray]:
        """The current ridge-regularized fit (None until enough samples)."""
        if self.count < 2:
            return None
        if self._weights is None:
            # scale-aware ridge: tiny against the data, big enough to pin the
            # null space of collinear features
            lam = 1e-8 * (np.trace(self.xtx) / self.dim + 1.0)
            self._weights = np.linalg.solve(
                self.xtx + lam * np.eye(self.dim), self.xty)
        return self._weights

    def predict(self, features: np.ndarray) -> Optional[float]:
        """Predicted cost for a feature vector (None until enough samples)."""
        w = self.weights()
        if w is None:
            return None
        return max(float(w @ np.asarray(features, dtype=np.float64)), 0.0)


def _density_seed_choice(candidates: Sequence[str], density: float,
                         threshold: float) -> str:
    """The paper's §V heuristic: matrix-driven once the vector densifies.

    Shared by the monolithic and sharded engines' cold-start selection.
    """
    matrix_driven = [c for c in candidates if c in MATRIX_DRIVEN]
    vector_driven = [c for c in candidates if c not in MATRIX_DRIVEN]
    if density >= threshold and matrix_driven:
        return matrix_driven[0]
    return vector_driven[0] if vector_driven else candidates[0]


def _ranked_selection(fits: Dict[str, CostFit], phi: np.ndarray,
                      explore_every: int, modeled_count: int
                      ) -> Optional[Tuple[str, bool]]:
    """Fit-driven choice among candidates; None while any fit is cold.

    ``modeled_count`` is the 1-based index of this modeled decision — every
    ``explore_every``-th one deliberately runs the predicted runner-up to
    keep the losing model fresh.  Shared by the per-call and fused-vs-looped
    selections of both engines.
    """
    predictions = {name: fit.predict(phi) for name, fit in fits.items()}
    if not all(p is not None for p in predictions.values()):
        return None
    ranked = sorted(fits, key=lambda name: predictions[name])
    if explore_every > 0 and len(ranked) > 1 and modeled_count % explore_every == 0:
        return ranked[1], True
    return ranked[0], False


def _mask_keep_fraction(masks: Optional[Sequence[Optional[SparseVector]]],
                        mask_complement: bool, k: int, nrows: int) -> float:
    """Expected fraction of scattered pairs the early masks let through.

    The mask-selectivity feature of the block cost fits: the structural
    densities of the masks (``nnz/m``, complemented if asked), averaged over
    the batch with maskless vectors counting as 1.0.  Shared by both engines.
    """
    if masks is None or k == 0:
        return 1.0
    m = max(nrows, 1)
    total = 0.0
    for mask in masks:
        if mask is None:
            total += 1.0
        else:
            density = mask.nnz / m
            total += (1.0 - density) if mask_complement else density
    return total / k


@dataclass
class EngineCall:
    """One dispatch decision of the engine (the unit of the reporting layer)."""

    index: int
    algorithm: str
    #: what the caller asked for ('auto' or a fixed name)
    requested: str
    f: int
    density: float
    cost_ms: float
    #: True when the adaptive policy deliberately ran the predicted runner-up
    explored: bool = False
    #: batch id for calls issued through multiply_many, else None
    batch: Optional[int] = None
    #: True when the call was served by the fused block kernel
    fused: bool = False


class SpMSpVEngine:
    """Persistent-workspace, adaptively-dispatched SpMSpV executor for one matrix.

    Parameters
    ----------
    matrix:
        The matrix every multiplication of this engine uses.
    ctx:
        Execution context shared by all calls (defaults to a single-threaded
        Edison context).
    algorithm:
        Default policy: a registered kernel name, or ``"auto"`` for adaptive
        per-call selection.  Overridable per call.
    candidates:
        The algorithms the adaptive policy arbitrates between.
    density_threshold:
        The §V density heuristic seeding the adaptive choice before the
        online cost models have enough samples.
    explore_every:
        Once the cost models are trained, every ``explore_every``-th adaptive
        call runs the predicted runner-up instead of the winner, keeping its
        model fresh.  0 disables exploration.
    workspace:
        An externally owned workspace to share (e.g. between engines over the
        same matrix); by default the engine allocates its own.
    """

    def __init__(self, matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None, *,
                 algorithm: str = "auto",
                 candidates: Sequence[str] = DEFAULT_CANDIDATES,
                 density_threshold: Optional[float] = None,
                 explore_every: int = 8,
                 workspace: Optional[SpMSpVWorkspace] = None):
        from .dispatch import AUTO_DENSITY_SWITCH  # late: avoids import cycle

        self.matrix = matrix
        self.ctx = ctx if ctx is not None else default_context()
        self.algorithm = algorithm
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("engine needs at least one candidate algorithm")
        self.density_threshold = (density_threshold if density_threshold is not None
                                  else AUTO_DENSITY_SWITCH)
        self.explore_every = int(explore_every)
        self.workspace = (workspace if workspace is not None
                          else SpMSpVWorkspace(matrix.nrows, dtype=matrix.dtype))
        #: recent dispatch decisions (trimmed beyond max_history; lifetime
        #: aggregates live in total_calls / total_cost_ms / total_explored)
        self.history: List[EngineCall] = []
        self.max_history = 4096
        self.total_calls = 0
        self.total_cost_ms = 0.0
        self.total_explored = 0
        self._models: Dict[str, CostFit] = {
            name: CostFit(dim=4) for name in self.candidates}
        #: wall-clock fits of blocked execution ('fused' vs 'looped'), over the
        #: block features (k, total nnz, union width, sharing ratio, mask
        #: selectivity, merge-segment count)
        self._block_fits: Dict[str, CostFit] = {
            mode: CostFit(dim=7) for mode in ("fused", "looped")}
        self._price = cost_model_for(self.ctx.platform)
        self._modeled_calls = 0
        self._modeled_blocks = 0
        self._batches = 0
        self._fused_batches = 0
        #: pending edge updates overlaid on self.matrix (see formats.delta)
        self.delta = DeltaLog(matrix.shape)
        self.compact_fraction = COMPACT_FRACTION
        self.compactions = 0
        self._patch: Optional[Tuple[CSCMatrix, np.ndarray]] = None
        self._row_nnz: Optional[np.ndarray] = None
        # one multiplication at a time per engine: concurrent callers of the
        # spmspv shim share this engine's workspace, which is not reentrant
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # adaptive selection
    # ------------------------------------------------------------------ #
    def _seed_choice(self, density: float) -> str:
        """The paper's §V heuristic: matrix-driven once the vector densifies."""
        return _density_seed_choice(self.candidates, density, self.density_threshold)

    def call_features(self, x: SparseVector) -> np.ndarray:
        """The (bias, nnz(x), density, nzc) features of one call on this matrix.

        ``nzc`` is the number of selected columns that are non-empty in the
        matrix — an O(nnz(x)) indptr probe, and the feature that separates
        hub-heavy frontiers from flat ones at equal nnz(x).
        """
        f = x.nnz
        if f:
            nzc = int(np.count_nonzero(
                self.matrix.indptr[x.indices + 1] - self.matrix.indptr[x.indices]))
        else:
            nzc = 0
        return dispatch_features(f, x.n, nzc)

    def select_algorithm(self, x: SparseVector,
                         features: Optional[np.ndarray] = None) -> Tuple[str, bool]:
        """Pick the algorithm for one input vector; returns ``(name, explored)``.

        ``features`` lets a caller that already computed :meth:`call_features`
        (the nzc probe is O(nnz(x))) pass them in instead of recomputing.
        """
        f = x.nnz
        density = f / max(x.n, 1)
        phi = features if features is not None else self.call_features(x)
        choice = _ranked_selection(self._models, phi, self.explore_every,
                                   self._modeled_calls + 1)
        if choice is not None:
            self._modeled_calls += 1
            return choice
        return self._seed_choice(density), False

    # ------------------------------------------------------------------ #
    # dynamic updates (delta overlay)
    # ------------------------------------------------------------------ #
    def apply_updates(self, rows, cols, values=None) -> Dict[str, object]:
        """Record edge updates against this engine's matrix.

        ``values=None`` deletes the listed edges; otherwise each ``(row,
        col)`` is inserted (or reweighted if present).  Updates take effect
        on the very next multiply via the delta overlay — the base matrix,
        its workspace and the learned cost models all stay warm.  Once the
        delta-touched rows carry more than ``compact_fraction`` of the base
        nonzeros the engine compacts: the effective matrix is rebuilt once
        and the delta resets.
        """
        with self._lock:
            if values is None:
                applied = self.delta.delete_edges(rows, cols)
            else:
                applied = self.delta.set_edges(rows, cols, values)
            self._patch = None
            compacted = self._maybe_compact_locked()
            return {"applied": applied, "delta_entries": self.delta.entries,
                    "compacted": compacted}

    def _overlay_nnz_locked(self) -> int:
        """Upper bound on the patch nnz the overlay pays per multiply."""
        if self._row_nnz is None:
            self._row_nnz = self.matrix.row_counts()
        return int(self._row_nnz[self.delta.touched_rows()].sum()) + self.delta.entries

    def _maybe_compact_locked(self) -> bool:
        if self.delta.is_empty:
            return False
        if self._overlay_nnz_locked() <= self.compact_fraction * max(self.matrix.nnz, 1):
            return False
        return self._compact_locked()

    def _compact_locked(self) -> bool:
        if self.delta.is_empty:
            return False
        self.matrix = apply_delta(self.matrix, self.delta)
        self.delta = DeltaLog(self.matrix.shape)
        self._patch = None
        self._row_nnz = None
        self.compactions += 1
        return True

    def compact(self) -> bool:
        """Fold the pending delta into the base matrix now; True if it ran."""
        with self._lock:
            return self._compact_locked()

    def effective_matrix(self) -> CSCMatrix:
        """The matrix this engine currently computes with (base ⊕ delta)."""
        with self._lock:
            if self.delta.is_empty:
                return self.matrix
            return apply_delta(self.matrix, self.delta)

    def delta_stats(self) -> Dict[str, object]:
        with self._lock:
            stats = self.delta.stats()
            stats["compactions"] = self.compactions
            return stats

    def _patch_pair_locked(self) -> Optional[Tuple[CSCMatrix, np.ndarray]]:
        if self.delta.is_empty:
            return None
        if self._patch is None:
            self._patch = build_patch(self.matrix, self.delta)
        return self._patch

    def _overlay_locked(self, fn, base: SpMSpVResult, x: SparseVector, *,
                        semiring: Semiring, sorted_output: Optional[bool],
                        mask: Optional[SparseVector], mask_complement: bool,
                        kwargs: Dict) -> SpMSpVResult:
        """Patch-correct one base result (same kernel, same inputs, same mask)."""
        patch, touched = self._patch
        pres = fn(patch, x, self.ctx, semiring=semiring,
                  sorted_output=sorted_output, mask=mask,
                  mask_complement=mask_complement, **kwargs)
        vector = splice_overlay(base.vector, pres.vector, touched)
        info = dict(base.info)
        info["delta_patch_nnz"] = patch.nnz
        return SpMSpVResult(vector=vector,
                            record=merge_overlay_record(base.record, pres.record),
                            info=info)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def multiply(self, x: SparseVector, *,
                 semiring: Semiring = PLUS_TIMES,
                 sorted_output: Optional[bool] = None,
                 mask: Optional[SparseVector] = None,
                 mask_complement: bool = False,
                 algorithm: Optional[str] = None,
                 workspace: Optional[object] = None,
                 _batch: Optional[int] = None,
                 _explored: bool = False,
                 **kwargs) -> SpMSpVResult:
        """Run ``y <- A x`` through the engine: select, execute, observe."""
        from .dispatch import get_algorithm  # late: avoids import cycle

        with self._lock:
            requested = algorithm if algorithm is not None else self.algorithm
            explored = _explored
            phi = None  # call features, computed at most once per call
            if requested == "auto":
                phi = self.call_features(x)
                name, explored = self.select_algorithm(x, features=phi)
            else:
                name = requested
            fn = get_algorithm(name)

            if workspace is None:
                workspace = self.workspace
            if _accepts_workspace(fn):
                kwargs = dict(kwargs, workspace=workspace)
            result = fn(self.matrix, x, self.ctx, semiring=semiring,
                        sorted_output=sorted_output, mask=mask,
                        mask_complement=mask_complement, **kwargs)
            if self._patch_pair_locked() is not None:
                result = self._overlay_locked(
                    fn, result, x, semiring=semiring,
                    sorted_output=sorted_output, mask=mask,
                    mask_complement=mask_complement, kwargs=kwargs)

            cost_ms = self._price.record_time_ms(result.record)
            if name in self._models:
                if phi is None:
                    phi = self.call_features(x)
                self._models[name].observe(phi, cost_ms)
            self.history.append(EngineCall(
                index=self.total_calls, algorithm=name, requested=requested,
                f=x.nnz, density=x.nnz / max(x.n, 1), cost_ms=cost_ms,
                explored=explored, batch=_batch))
            self.total_calls += 1
            self.total_cost_ms += cost_ms
            self.total_explored += int(explored)
            if len(self.history) > 2 * self.max_history:
                # cached engines live for the process: keep memory bounded
                del self.history[:len(self.history) - self.max_history]
            return result

    # ------------------------------------------------------------------ #
    # blocked execution
    # ------------------------------------------------------------------ #
    def _block_eligible(self, xs: List[SparseVector], requested: str,
                        kwargs: Dict) -> bool:
        """Whether this batch can run through the fused block kernel.

        The fused kernel is the block variant of the bucket algorithm, so the
        batch must have resolved to ``"bucket"``; it also needs ≥ 2 vectors of
        one dtype (mixed-dtype blocks would promote the value slab and break
        bit-identity with per-vector calls) and no kernel-specific kwargs.
        """
        return (requested == "bucket" and len(xs) >= 2 and not kwargs
                and len({x.dtype for x in xs}) == 1)

    @staticmethod
    def _block_stats(xs: List[SparseVector]) -> Tuple[int, int]:
        """``(total_nnz, union_nnz)`` of a batch, without building the block.

        The fused-vs-looped decision only needs these two scalars; the full
        :class:`SparseVectorBlock` (value slab, membership mask, positions)
        is O(union x k) and is built only for batches that actually fuse.
        """
        total_nnz = sum(x.nnz for x in xs)
        nonempty = [x.indices for x in xs if x.nnz]
        union_nnz = int(len(np.unique(np.concatenate(nonempty)))) if nonempty else 0
        return total_nnz, union_nnz

    def _mask_keep_fraction(self, masks: Optional[Sequence[Optional[SparseVector]]],
                            mask_complement: bool, k: int) -> float:
        """The mask-selectivity feature of the block fits (shared helper)."""
        return _mask_keep_fraction(masks, mask_complement, k, self.matrix.nrows)

    def _block_phi(self, k: int, total_nnz: int, union_nnz: int,
                   mask_keep: float) -> np.ndarray:
        """The block feature vector, with this engine's merge-segment count."""
        return block_features(k, total_nnz, union_nnz, mask_keep=mask_keep,
                              segments=k * self.ctx.num_buckets)

    def select_block_mode(self, block: SparseVectorBlock,
                          masks: Optional[Sequence[Optional[SparseVector]]] = None,
                          mask_complement: bool = False) -> Tuple[str, bool]:
        """Fused or looped execution for one block; returns ``(mode, explored)``."""
        return self._select_block_mode(
            self._block_phi(block.k, block.total_nnz, block.union_nnz,
                            self._mask_keep_fraction(masks, mask_complement,
                                                     block.k)),
            block.k, block.sharing_ratio())

    def _select_block_mode(self, phi: np.ndarray, k: int, sharing: float
                           ) -> Tuple[str, bool]:
        """The decision behind :meth:`select_block_mode`, from precomputed features.

        Seeded by a sharing/width heuristic — fuse wide blocks (k ≥ 4), and
        narrower ones only when their column unions overlap enough for the
        shared gather to pay — then refined online from *measured wall time*
        of fused and looped batches over the block features
        ``(k, total nnz, union width, sharing)``.  Wall time, not simulated
        time, because the two paths do the same algorithmic work: fusion wins
        by eliminating per-vector dispatch and gather overhead, which only
        the clock sees.
        """
        choice = _ranked_selection(self._block_fits, phi, self.explore_every,
                                   self._modeled_blocks + 1)
        if choice is not None:
            self._modeled_blocks += 1
            return choice
        if k >= 4 or sharing >= 1.5:
            return "fused", False
        return "looped", False

    def multiply_block(self, block: SparseVectorBlock, *,
                       semiring: Semiring = PLUS_TIMES,
                       sorted_output: Optional[bool] = None,
                       masks: Optional[Sequence[Optional[SparseVector]]] = None,
                       mask_complement: bool = False,
                       algorithm: Optional[str] = None,
                       block_mode: str = "auto",
                       block_merge: str = "segmented") -> List[SpMSpVResult]:
        """Blocked execution of an **already-packed** :class:`SparseVectorBlock`.

        The batch entry point of the serving layer: a coalescer that packed
        concurrent requests into one block (it needs the block anyway, to
        demultiplex per-request results through the block's positions) hands
        it straight to the engine — the fused path reuses the pack instead of
        re-deriving the column union, and results come back one per member
        vector, in pack order, bit-identical to :meth:`multiply_many` over
        ``block.to_vectors()``.
        """
        return self.multiply_many(
            block.to_vectors(), semiring=semiring, sorted_output=sorted_output,
            masks=masks, mask_complement=mask_complement, algorithm=algorithm,
            block_mode=block_mode, block_merge=block_merge, _block=block)

    def multiply_many(self, xs: Sequence[SparseVector], *,
                      semiring: Semiring = PLUS_TIMES,
                      sorted_output: Optional[bool] = None,
                      masks: Optional[Sequence[Optional[SparseVector]]] = None,
                      mask_complement: bool = False,
                      algorithm: Optional[str] = None,
                      block_mode: str = "auto",
                      block_merge: str = "segmented",
                      _block: Optional[SparseVectorBlock] = None,
                      **kwargs) -> List[SpMSpVResult]:
        """Blocked execution of one matrix against many input vectors.

        The whole batch shares the engine's workspace and — under ``"auto"``
        — a single dispatch decision, made for the *densest* vector of the
        block (the worst case for a vector-driven kernel).  When the batch
        resolves to the bucket kernel, the engine additionally chooses between
        the **fused block kernel** (one gather, one masked scatter and one
        segmented merge for the whole block,
        :func:`~repro.core.spmspv_block.spmspv_bucket_block`) and the
        per-vector loop, per :meth:`select_block_mode`; ``block_mode`` forces
        the choice (``"fused"`` / ``"looped"``) instead of ``"auto"``, and
        ``block_merge`` selects the fused kernel's merge strategy
        (``"segmented"`` per-(vector, bucket) merge, or the legacy
        ``"global"`` composite-key sort — a perf knob for the regression
        harness).  Per-vector ``masks`` are folded into the fused scatter, so
        masked batches (multi-source BFS frontiers, restricted PageRank) do
        O(surviving pairs) merge work.  All paths return bit-identical
        results.  This is the multi-source BFS / blocked PageRank entry
        point.
        """
        if block_mode not in ("auto", "fused", "looped"):
            raise ValueError(f"block_mode must be auto|fused|looped, got {block_mode!r}")
        if block_merge not in ("segmented", "global"):
            raise ValueError(
                f"block_merge must be segmented|global, got {block_merge!r}")
        xs = list(xs)
        if masks is not None and len(masks) != len(xs):
            raise ValueError(f"got {len(xs)} vectors but {len(masks)} masks")
        batch = self._batches
        self._batches += 1
        requested = algorithm if algorithm is not None else self.algorithm
        explored = False
        if requested == "auto" and xs:
            densest = max(xs, key=lambda x: x.nnz)
            requested, explored = self.select_algorithm(densest)

        eligible = self._block_eligible(xs, requested, kwargs)
        mode = "looped"
        block_explored = False
        phi: Optional[np.ndarray] = None
        if eligible:
            total_nnz, union_nnz = self._block_stats(xs)
            phi = self._block_phi(len(xs), total_nnz, union_nnz,
                                  self._mask_keep_fraction(masks, mask_complement,
                                                           len(xs)))
            if block_mode == "auto":
                mode, block_explored = self._select_block_mode(
                    phi, len(xs), total_nnz / max(union_nnz, 1))
            else:
                # forced mode: fused only applies to eligible batches — an
                # ineligible one (e.g. a single surviving BFS frontier) quietly
                # runs the per-vector loop, which is bit-identical anyway
                mode = block_mode

        if mode == "fused":
            return self._multiply_block(
                xs, phi, batch=batch,
                semiring=semiring, sorted_output=sorted_output, masks=masks,
                mask_complement=mask_complement, requested=requested,
                explored=explored or block_explored, block_merge=block_merge,
                block=_block)

        # observed window spans the same per-call pricing/bookkeeping the
        # fused window spans, so the two wall-time fits stay comparable
        t0 = time.perf_counter()
        results = []
        for i, x in enumerate(xs):
            results.append(self.multiply(
                x, semiring=semiring, sorted_output=sorted_output,
                mask=masks[i] if masks is not None else None,
                mask_complement=mask_complement, algorithm=requested,
                # one exploration decision per batch: flag only its first call
                _batch=batch, _explored=explored and i == 0, **kwargs))
        if eligible:
            self._block_fits["looped"].observe(
                phi, (time.perf_counter() - t0) * 1e3)
        return results

    def _multiply_block(self, xs: List[SparseVector],
                        phi: Optional[np.ndarray], *, batch: int,
                        semiring: Semiring, sorted_output: Optional[bool],
                        masks: Optional[Sequence[Optional[SparseVector]]],
                        mask_complement: bool, requested: str,
                        explored: bool,
                        block_merge: str = "segmented",
                        block: Optional[SparseVectorBlock] = None
                        ) -> List[SpMSpVResult]:
        """Run one batch through the fused block kernel, observing its cost."""
        from .spmspv_block import spmspv_bucket_block  # late: avoids import cycle

        with self._lock:
            # the observed window covers everything fusion-specific the looped
            # path does not pay — block packing, the fused kernel, and the
            # per-result pricing/bookkeeping below — so the fused and looped
            # wall-time fits stay comparable
            t0 = time.perf_counter()
            if block is None:
                block = SparseVectorBlock.from_vectors(xs)
            if phi is None:
                phi = self._block_phi(block.k, block.total_nnz, block.union_nnz,
                                      self._mask_keep_fraction(
                                          masks, mask_complement, block.k))
            results = spmspv_bucket_block(
                self.matrix, block, self.ctx, semiring=semiring,
                sorted_output=sorted_output, masks=masks,
                mask_complement=mask_complement, merge=block_merge,
                workspace=self.workspace)
            pair = self._patch_pair_locked()
            if pair is not None:
                patch, touched = pair
                presults = spmspv_bucket_block(
                    patch, block, self.ctx, semiring=semiring,
                    sorted_output=sorted_output, masks=masks,
                    mask_complement=mask_complement, merge=block_merge,
                    workspace=self.workspace)
                results = [
                    SpMSpVResult(
                        vector=splice_overlay(r.vector, p.vector, touched),
                        record=merge_overlay_record(r.record, p.record),
                        info=dict(r.info, delta_patch_nnz=patch.nnz))
                    for r, p in zip(results, presults)]
            self._fused_batches += 1
            nnzs = block.nnz_per_vector()
            # block-aware exploration of the per-call models: each fused
            # vector's share of the block cost is an observation of what the
            # bucket algorithm costs on that frontier, so fused batches keep
            # the bucket-vs-graphmat fits current even for workloads that
            # never issue a per-vector call (multi-source BFS, blocked
            # PageRank).  The share is only faithful when the block's column
            # unions barely overlap: the fused record amortizes ONE union
            # gather across the block, so on heavily-shared blocks each share
            # under-counts the gather a standalone call would pay and would
            # train the fit systematically low — those observations are
            # skipped rather than corrected (the merge side is not amortized,
            # so no single scale factor fixes both).
            sharing = block.sharing_ratio()
            bucket_fit = self._models.get("bucket") if sharing <= 1.25 else None
            for i, result in enumerate(results):
                cost_ms = self._price.record_time_ms(result.record)
                if bucket_fit is not None:
                    bucket_fit.observe(self.call_features(xs[i]), cost_ms)
                f = int(nnzs[i])
                self.history.append(EngineCall(
                    index=self.total_calls, algorithm="bucket_block",
                    requested=requested, f=f, density=f / max(block.n, 1),
                    cost_ms=cost_ms, explored=explored and i == 0, batch=batch,
                    fused=True))
                self.total_calls += 1
                self.total_cost_ms += cost_ms
            self._block_fits["fused"].observe(
                phi, (time.perf_counter() - t0) * 1e3)
            self.total_explored += int(explored)
            if len(self.history) > 2 * self.max_history:
                del self.history[:len(self.history) - self.max_history]
            return results

    # ------------------------------------------------------------------ #
    # lifecycle: symmetric with ShardedEngine, whose process backend holds
    # real resources — callers can treat any engine as a context manager
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release engine resources (the monolithic engine holds none)."""

    def health_stats(self) -> Dict[str, object]:
        """Resilience accounting, shape-compatible with sharded engines.

        The monolithic engine has no workers to lose, so every counter is
        zero — serving layers can aggregate health over a mixed engine
        fleet without special-casing."""
        return {"worker_deaths": [], "respawns": 0, "retries": 0,
                "fallback_calls": 0, "fallback_strips": 0, "deadline_hits": 0}

    def __enter__(self) -> "SpMSpVEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # introspection (consumed by repro.analysis.reporting)
    # ------------------------------------------------------------------ #
    def algorithms_used(self) -> List[str]:
        """Distinct kernels executed, in first-use order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for call in self.history:
            seen.setdefault(call.algorithm, None)
        return list(seen)

    @property
    def switch_count(self) -> int:
        """How many times consecutive calls used different algorithms."""
        return sum(1 for a, b in zip(self.history, self.history[1:])
                   if a.algorithm != b.algorithm)

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics of the engine's lifetime (for reporting).

        ``algorithms_used`` and ``switches`` are computed over the retained
        history window (``max_history`` recent calls); the scalar totals are
        lifetime counters.
        """
        return {
            "calls": self.total_calls,
            "batches": self._batches,
            "fused_batches": self._fused_batches,
            "algorithms_used": self.algorithms_used(),
            "switches": self.switch_count,
            "explored_calls": self.total_explored,
            "total_cost_ms": self.total_cost_ms,
            "workspace": self.workspace.stats(),
            "delta_entries": self.delta.entries,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVEngine(matrix={self.matrix.nrows}x{self.matrix.ncols}, "
                f"algorithm={self.algorithm!r}, calls={len(self.history)})")


# --------------------------------------------------------------------------- #
# engine cache backing the repro.core.dispatch.spmspv shim
# --------------------------------------------------------------------------- #
_ENGINE_CACHE: "OrderedDict[tuple, SpMSpVEngine]" = OrderedDict()
_ENGINE_CACHE_LIMIT = 8
#: cache keys exempt from LRU eviction, with a pin count per key so nested
#: pinners (two EngineGroups over one matrix) compose
_ENGINE_PINS: Dict[tuple, int] = {}


def _evict_over_limit() -> None:
    """Evict the oldest *unpinned* entries beyond the cache limit.

    Pinned entries neither get evicted nor count toward the limit — a
    workload legitimately holding many live matrices (an
    :class:`~repro.core.sharded.EngineGroup`) must not have its members'
    workspaces silently rebuilt mid-algorithm by unrelated ``spmspv`` calls.
    """
    unpinned = [k for k in _ENGINE_CACHE if k not in _ENGINE_PINS]
    for key in unpinned[:max(len(unpinned) - _ENGINE_CACHE_LIMIT, 0)]:
        del _ENGINE_CACHE[key]


def engine_for(matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None, *,
               pin: bool = False) -> SpMSpVEngine:
    """The cached engine serving ``spmspv`` calls for ``(matrix, ctx)``.

    Entries pin the matrix (so ids cannot be recycled while cached) and are
    evicted LRU beyond a small limit; repeated calls on the same matrix —
    the shape of every iterative algorithm and benchmark — therefore reuse
    one workspace and one adaptive state.  ``pin=True`` additionally exempts
    the entry from LRU eviction until a matching :func:`unpin_engine` (see
    :func:`pin_engine`).  Shim engines run with exploration disabled:
    ``spmspv(..., algorithm="auto")`` on identical inputs must pick the
    predicted-best kernel deterministically (benchmarks time it), so the
    deliberate runner-up calls are an opt-in of explicitly constructed
    engines.
    """
    ctx = ctx if ctx is not None else default_context()
    key = (id(matrix), ctx)
    engine = _ENGINE_CACHE.get(key)
    if engine is not None and engine.matrix is matrix:
        _ENGINE_CACHE.move_to_end(key)
    else:
        engine = SpMSpVEngine(matrix, ctx, explore_every=0)
        _ENGINE_CACHE[key] = engine
    if pin:
        _ENGINE_PINS[key] = _ENGINE_PINS.get(key, 0) + 1
    _evict_over_limit()
    return engine


def pin_engine(matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None
               ) -> SpMSpVEngine:
    """Get-or-create the cached engine for ``(matrix, ctx)`` and pin it.

    A pinned engine survives any number of intervening ``spmspv`` calls on
    other matrices (the LRU limit only applies to unpinned entries), so its
    workspace and adaptive state are never rebuilt mid-algorithm.  Pins
    nest; every ``pin_engine`` needs a matching :func:`unpin_engine`.
    """
    return engine_for(matrix, ctx, pin=True)


def unpin_engine(matrix: CSCMatrix, ctx: Optional[ExecutionContext] = None) -> None:
    """Release one pin on the cached engine for ``(matrix, ctx)``.

    The entry stays cached but becomes evictable again once its pin count
    reaches zero.  Unpinning a key that is not pinned is a no-op.
    """
    ctx = ctx if ctx is not None else default_context()
    key = (id(matrix), ctx)
    count = _ENGINE_PINS.get(key)
    if count is None:
        return
    if count <= 1:
        del _ENGINE_PINS[key]
    else:
        _ENGINE_PINS[key] = count - 1
    _evict_over_limit()


def clear_engine_cache() -> None:
    """Drop all cached engines and pins (exposed for tests)."""
    _ENGINE_CACHE.clear()
    _ENGINE_PINS.clear()
