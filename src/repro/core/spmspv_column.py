"""Column-split SpMSpV: per-strip partial products plus a reduction phase.

The paper's work-efficiency argument (§II-F, Table II) is that row-split
SpMSpV forces every thread to scan the whole input vector, while
**column-split** is work-efficient: the matrix is cut into ``t`` vertical
strips, each thread reads only its private slice of ``x``, and the partial
outputs are merged in a synchronized reduction phase.  This module provides
the two halves of that scheme as pure functions:

* :func:`column_partial` — everything a strip can do privately: gather the
  DCSC columns selected by its frontier slice, early-mask the scattered
  rows, scale under the semiring, and row-sort the stream.  The result is an
  **unreduced** ``(rows, values, gpos)`` stream — ``gpos`` is each addend's
  position in the *global* frontier's storage order.
* :func:`reduce_partials` — the reduction phase: concatenate the strip
  streams, order them exactly as the monolithic kernel's single gather
  stream would be ordered, and run one ``semiring.reduceat`` per row run.

Shipping unreduced streams is what makes the scheme bit-identical to the
monolithic engine: the monolithic kernels reduce each row's addends with a
sequential left fold in frontier-storage order, and floating-point addition
does not associate.  Had each strip pre-reduced its own addends, the parent
would have to re-reduce partial sums — a different association, and a
different answer in the last ulp.  Instead every row's addends are folded
once, parent-side, in the same order as the monolithic stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._typing import INDEX_DTYPE
from ..formats.bitvector import BitVector
from ..formats.dcsc import DCSCMatrix
from ..formats.sparse_vector import SparseVector
from ..parallel.context import ExecutionContext
from ..parallel.metrics import ExecutionRecord, PhaseRecord, WorkMetrics
from ..semiring import Semiring
from .buckets import stable_row_argsort
from .vector_ops import finalize_output, mask_keep

__all__ = ["ColumnPartial", "column_partial", "reduce_partials",
           "slice_frontier", "merge_partial_records"]


@dataclass
class ColumnPartial:
    """One strip's unreduced contribution to a column-split SpMSpV.

    ``rows``/``vals``/``gpos`` are parallel arrays sorted by ``rows``
    (stably, so equal rows keep their gather order); ``gpos[k]`` is the
    position of addend ``k``'s frontier entry in the **global** input
    vector's storage, which is what lets the reduction phase restore the
    monolithic addend order even for unsorted frontiers.
    """

    nrows: int
    rows: np.ndarray
    vals: np.ndarray
    gpos: np.ndarray
    record: ExecutionRecord
    info: Dict = field(default_factory=dict)


def slice_frontier(x: SparseVector, col_ranges: Sequence[Tuple[int, int]]
                   ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Slice a frontier by column range: ``(local_idx, values, gpos)`` per strip.

    Each strip sees only the frontier entries that fall inside its column
    range — the private ``x`` slice of the paper's column-split scheme —
    with indices rebased to the strip's local column space and ``gpos``
    recording each entry's position in the global storage order.
    """
    slices = []
    for lo, hi in col_ranges:
        if x.nnz == 0 or lo >= hi:
            slices.append((np.empty(0, dtype=INDEX_DTYPE),
                           np.empty(0, dtype=x.dtype),
                           np.empty(0, dtype=INDEX_DTYPE)))
            continue
        sel = (x.indices >= lo) & (x.indices < hi)
        gpos = np.flatnonzero(sel).astype(INDEX_DTYPE)
        slices.append(((x.indices[gpos] - lo).astype(INDEX_DTYPE),
                       x.values[gpos], gpos))
    return slices


def column_partial(strip: DCSCMatrix,
                   xs_idx: np.ndarray, xs_vals: np.ndarray, xs_gpos: np.ndarray,
                   ctx: ExecutionContext, *,
                   semiring: Semiring,
                   out_dtype,
                   algorithm: str = "bucket",
                   bitmap: Optional[BitVector] = None,
                   mask_complement: bool = False) -> ColumnPartial:
    """The private (pre-reduction) half of one column strip's SpMSpV.

    Gathers the strip's DCSC columns selected by the frontier slice,
    early-masks the scattered rows (whole rows drop, so surviving addend
    streams are untouched — the same argument that keeps early masking
    bit-identical in the monolithic kernels), scales under the semiring
    through ``out_dtype`` (the *global* ``result_type(A, x)``, fixed by the
    caller so every strip casts exactly like the monolithic stream), and
    stably row-sorts.  ``algorithm`` names the kernel family driving the
    dispatch decision and labels; the gather/mask/scale/sort core here is
    the part all five kernels share — their differences (SPA vs heap vs
    bucket merge) live entirely in the merge, which column-split moves into
    the parent's reduction phase.
    """
    t_start = time.perf_counter()
    m = strip.nrows
    f = int(len(xs_idx))
    record = ExecutionRecord(algorithm=f"column_partial:{algorithm}", num_threads=1,
                             info={"m": m, "n": strip.ncols,
                                   "nnz_A": strip.nnz, "f": f})

    gather_phase = PhaseRecord(name="gather", parallel=True)
    g = WorkMetrics()
    if f and strip.nnz:
        rows, vals, src = strip.gather_columns(xs_idx)
        g.vector_reads = f
        g.colptr_reads = f
        g.matrix_nnz_reads = len(rows)
        if bitmap is not None:
            g.bitmap_probes = len(rows)
            keep = mask_keep(bitmap, rows, complement=mask_complement)
            rows, vals, src = rows[keep], vals[keep], src[keep]
    else:
        rows = np.empty(0, dtype=INDEX_DTYPE)
        vals = np.empty(0, dtype=strip.dtype)
        src = np.empty(0, dtype=INDEX_DTYPE)
    gather_phase.thread_metrics = [g]
    record.add_phase(gather_phase)

    total = len(rows)
    record.info["df"] = total

    scale_phase = PhaseRecord(name="scale", parallel=True)
    s = WorkMetrics()
    if total:
        scaled = np.asarray(semiring.multiply(vals, xs_vals[src])) \
            .astype(out_dtype, copy=False)
        gpos = xs_gpos[src].astype(INDEX_DTYPE, copy=False)
        s.multiplications = total
        s.buffer_writes = total
    else:
        scaled = np.empty(0, dtype=out_dtype)
        gpos = np.empty(0, dtype=INDEX_DTYPE)
    scale_phase.thread_metrics = [s]
    record.add_phase(scale_phase)

    sort_phase = PhaseRecord(name="strip_sort", parallel=True)
    so = WorkMetrics()
    if total:
        order = stable_row_argsort(rows, m)
        rows, scaled, gpos = rows[order], scaled[order], gpos[order]
        so.sort_elements = total
        so.output_writes = total
    sort_phase.thread_metrics = [so]
    record.add_phase(sort_phase)

    record.wall_time_s = time.perf_counter() - t_start
    return ColumnPartial(nrows=m, rows=rows, vals=scaled, gpos=gpos,
                         record=record, info={"df": total})


def reduce_partials(partials: Sequence[ColumnPartial], *,
                    semiring: Semiring, nrows: int, x_sorted: bool,
                    out_dtype) -> Tuple[SparseVector, WorkMetrics]:
    """The reduction phase: merge strip streams into the output vector.

    The concatenated streams are reordered to exactly the monolithic
    kernel's addend order — stably by row when the frontier is sorted (strip
    streams then concatenate in ascending global-position order, which a
    stable sort preserves within rows), or by ``(row, gpos)`` lexsort when
    it is not (the pairs are unique, so the order is deterministic and
    matches the monolithic gather stream position for position).  One
    ``semiring.reduceat`` per row run then folds every row's addends left to
    right, exactly once — the fold the monolithic kernels perform.

    Returns the finalized output (identities pruned; masking already
    happened strip-side) and the reduction phase's work metrics:
    ``sync_events`` charges the per-strip synchronization the paper's
    Table II attributes to column-split.
    """
    metrics = WorkMetrics()
    metrics.sync_events = len(partials)
    streams = [p for p in partials if len(p.rows)]
    if not streams:
        empty = SparseVector(nrows, np.empty(0, dtype=INDEX_DTYPE),
                             np.empty(0, dtype=out_dtype), sorted=True, check=False)
        return finalize_output(empty, semiring), metrics
    rows = np.concatenate([p.rows for p in streams])
    vals = np.concatenate([p.vals for p in streams]).astype(out_dtype, copy=False)
    gpos = np.concatenate([p.gpos for p in streams])
    if x_sorted:
        order = stable_row_argsort(rows, nrows)
    else:
        order = np.lexsort((gpos, rows))
    sr, sv = rows[order], vals[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sr)) + 1))
    merged = np.asarray(semiring.reduceat(sv, starts)).astype(out_dtype, copy=False)
    total = len(sr)
    uniq = len(starts)
    metrics.sort_elements = total
    metrics.additions = total - uniq
    metrics.output_writes = uniq
    y = SparseVector(nrows, sr[starts].astype(INDEX_DTYPE), merged,
                     sorted=True, check=False)
    return finalize_output(y, semiring), metrics


def merge_partial_records(records: Sequence[ExecutionRecord], *,
                          algorithm: str, num_strips: int,
                          reduce_metrics: WorkMetrics,
                          wall_time_s: float = 0.0) -> ExecutionRecord:
    """Combine per-strip partial records into one column-split record.

    Per-strip phases of the same name become one parallel phase whose
    ``thread_metrics`` hold each strip's contribution; the reduction phase
    is appended as a serial phase behind one barrier (the synchronization
    point the row-split scheme avoids and column-split pays for).
    """
    merged = ExecutionRecord(algorithm=f"column[{num_strips}]:{algorithm}",
                             num_threads=max(num_strips, 1),
                             wall_time_s=wall_time_s)
    phase_names: List[str] = []
    for rec in records:
        for ph in rec.phases:
            if ph.name not in phase_names:
                phase_names.append(ph.name)
    for name in phase_names:
        phase = PhaseRecord(name=name, parallel=True, barriers=0)
        for rec in records:
            for ph in rec.phases:
                if ph.name == name:
                    phase.thread_metrics.append(
                        WorkMetrics.sum(ph.thread_metrics + [ph.serial_metrics]))
        merged.add_phase(phase)
    merged.add_phase(PhaseRecord(name="reduce", parallel=False,
                                 serial_metrics=reduce_metrics, barriers=1))
    df = sum(rec.info.get("df", 0) for rec in records)
    merged.info["df"] = df
    merged.info["scheme"] = "column"
    return merged
