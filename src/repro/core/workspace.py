"""Persistent per-matrix workspaces: the §III-A "Memory allocation" optimization.

The paper preallocates the bucket storage and the SPA once and reuses them
across the hundreds of SpMSpV calls an iterative graph algorithm performs
("all memory needed ... allocated at the beginning ... reused"), instead of
paying an allocation per multiplication.  :class:`SpMSpVWorkspace` bundles
every reusable buffer the package's kernels need:

* a :class:`~repro.core.buckets.BucketStore` for the bucket algorithm's
  scaled-entry scatter (Step 1 of Algorithm 1),
* a :class:`~repro.core.spa.SparseAccumulator` with O(1) epoch reset,
* a :class:`DenseScratch` — the dense accumulation buffer the CombBLAS and
  GraphMat style baselines merge through.

A workspace is bound to a row dimension ``m`` (the matrix it serves); value
buffers regrow or change dtype lazily, and every acquisition / reallocation
is counted so :mod:`repro.analysis.reporting` can report how much allocation
traffic the reuse saved.
"""

from __future__ import annotations

from multiprocessing import shared_memory as _shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._typing import INDEX_DTYPE
from ..errors import BackendError, DimensionMismatchError
from ..semiring import PLUS_TIMES, Semiring
from .buckets import BucketStore
from .spa import SparseAccumulator


def merge_by_row(rows: np.ndarray, values: np.ndarray, semiring: Semiring,
                 *, sort_output: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Combine entries that share a row id with the semiring ADD.

    Output is row-sorted, or in first-touch order when ``sort_output`` is
    false.  This is the canonical merge every vector-driven baseline uses
    (re-exported by :mod:`repro.baselines.common`); :class:`DenseScratch`
    publishes its result through a persistent buffer without recomputing it,
    which is what keeps the two paths bit-identical.
    """
    if len(rows) == 0:
        return rows, values
    order = np.argsort(rows, kind="stable")
    sr, sv = rows[order], values[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sr)) + 1))
    uind = sr[starts]
    merged = semiring.reduceat(sv, starts)
    if not sort_output:
        perm = np.argsort(order[starts], kind="stable")
        uind, merged = uind[perm], merged[perm]
    return uind, merged


class DenseScratch:
    """A persistent dense accumulation buffer over the row space ``0..m-1``.

    This is the workspace the row-split baselines merge through: gathered
    (row, value) pairs are scattered into a dense array initialized with the
    semiring's additive identity at exactly the touched slots (partial
    initialization), then the touched slots are read back out.  The buffer is
    allocated once and reused; only the touched slots are re-initialized per
    call, so reuse costs O(touched), not O(m).
    """

    __slots__ = ("m", "values",)

    def __init__(self, m: int, dtype=np.float64):
        self.m = int(m)
        self.values = np.empty(self.m, dtype=dtype)

    @property
    def dtype(self):
        return self.values.dtype

    def ensure_dtype(self, dtype) -> bool:
        """Reallocate for a new value dtype; returns True if a reallocation happened."""
        if dtype is not None and self.values.dtype != np.dtype(dtype):
            self.values = np.empty(self.m, dtype=dtype)
            return True
        return False

    def merge(self, rows: np.ndarray, values: np.ndarray, semiring: Semiring, *,
              sort_output: bool = True, publish: bool = False
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Combine entries sharing a row id with the semiring ADD, via the scratch.

        The reduction is :func:`merge_by_row` itself (not a scatter
        ``ufunc.at`` loop, whose sequential rounding differs from
        ``reduceat``'s pairwise summation), so the workspace path is
        bit-identical to the fresh path by construction.  With ``publish``
        the merged values are additionally published into (and gathered back
        from) the persistent dense buffer — the baselines' strip-private SPA
        made observable.  The publish/gather is O(nnz_y) work on top of the
        merge and changes no output bit and no work metric (the baselines'
        SPA accounting is analytic, not instrumented), so it is opt-in:
        engine-internal calls skip it, callers that want to inspect the
        dense state (or model its memory traffic in wall time) ask for it.
        """
        if len(rows) == 0:
            return rows, values
        self.ensure_dtype(np.asarray(values).dtype)
        uind, merged = merge_by_row(rows, values, semiring, sort_output=sort_output)
        if not publish:
            return uind, merged
        uind = uind.astype(INDEX_DTYPE, copy=False)
        self.values[uind] = merged
        return uind, self.values[uind].copy()


class SharedSlab:
    """A named, shared-memory-backed array slab (one ndarray, one segment).

    This is the unit the process backend ships strip data with: the owning
    process :meth:`create`\\ s a slab per strip array (CSC ``indptr`` /
    ``indices`` / ``data``), workers :meth:`attach` by name and wrap the
    same physical pages in a zero-copy ndarray view, so a strip is paid for
    once at engine build no matter how many calls the workers serve.
    Lifecycle: every process that opened a slab calls :meth:`close`; the
    owner additionally calls :meth:`unlink` (idempotent) to release the
    segment — :class:`~repro.parallel.backends.ProcessBackend` does both on
    shutdown and from a gc finalizer, so no ``/dev/shm`` block outlives the
    engine.
    """

    __slots__ = ("shm", "array", "owner", "_meta")

    def __init__(self, shm: _shared_memory.SharedMemory, array: np.ndarray,
                 owner: bool):
        self.shm = shm
        self.array = array
        self.owner = owner
        self._meta = (shm.name, tuple(array.shape), array.dtype.str)

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedSlab":
        """Copy ``array`` into a fresh named segment (size >= 1 byte: empty
        arrays get a minimal segment so their names still round-trip).

        If viewing or copying fails after the segment was allocated, the
        segment is released before the exception propagates — a half-built
        slab never leaks a ``/dev/shm`` block.
        """
        array = np.ascontiguousarray(array)
        shm = _shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        try:
            view = np.frombuffer(shm.buf, dtype=array.dtype,
                                 count=array.size).reshape(array.shape)
            view[...] = array
        except BaseException:
            view = None
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            raise
        return cls(shm, view, owner=True)

    @classmethod
    def alloc(cls, nbytes: int) -> "SharedSlab":
        """Allocate a raw zero-initialized byte segment (viewed as ``uint8``).

        This is the constructor the comm-plane arenas use: the segment is a
        blank canvas regions are packed into, not a copy of one array.
        """
        nbytes = max(int(nbytes), 1)
        shm = _shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            view = np.frombuffer(shm.buf, dtype=np.uint8, count=nbytes)
        except BaseException:  # pragma: no cover - mirrors create()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        return cls(shm, view, owner=True)

    @classmethod
    def attach(cls, name: str, shape: Sequence[int], dtype: str, *,
               untrack: bool = False) -> "SharedSlab":
        """Attach to an existing segment and view it as ``(shape, dtype)``.

        ``untrack`` unregisters the segment from this process's
        ``resource_tracker``: an attaching worker must not trigger the
        tracker's destroy-on-exit behaviour for a segment the owner is still
        serving (CPython registers on attach as well as on create).

        A segment that no longer exists (its owner unlinked it or died)
        raises :class:`~repro.errors.BackendError` with the segment name —
        attaching is a backend-plumbing operation and its failure mode should
        say so, not surface as a bare ``FileNotFoundError``.
        """
        try:
            shm = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise BackendError(
                f"shared-memory segment {name!r} has vanished (its owner "
                f"unlinked it or died); the attaching side holds a stale "
                f"reference") from None
        if untrack:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        array = np.frombuffer(shm.buf, dtype=dt, count=count).reshape(tuple(shape))
        return cls(shm, array, owner=False)

    @property
    def meta(self) -> Tuple[str, Tuple[int, ...], str]:
        """``(segment name, shape, dtype.str)`` — everything attach() needs."""
        return self._meta

    @property
    def name(self) -> str:
        return self._meta[0]

    def close(self) -> None:
        """Drop this process's view and mapping (idempotent, reference-safe)."""
        self.array = None
        try:
            self.shm.close()
        except BufferError:  # a caller still holds a view; the fd stays open
            pass

    def try_close(self) -> bool:
        """Like :meth:`close`, but report whether the mapping actually closed.

        Callers that *expect* lingering views (a :class:`SlabReader`
        retiring a superseded generation while the old call's vectors are
        still in scope) use this to retry later instead of abandoning the
        mapping to a noisy ``SharedMemory.__del__``.
        """
        self.array = None
        try:
            self.shm.close()
        except BufferError:
            return False
        return True

    def unlink(self) -> None:
        """Release the segment itself (owner side; idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


#: byte alignment of every array packed into an arena region (cache line)
_SLAB_ALIGN = 64


def _align_up(nbytes: int) -> int:
    return (int(nbytes) + _SLAB_ALIGN - 1) & ~(_SLAB_ALIGN - 1)


def packed_nbytes(arrays: Sequence[np.ndarray]) -> int:
    """Bytes needed to pack ``arrays`` back to back at slab alignment."""
    return sum(_align_up(np.asarray(a).nbytes) for a in arrays)


def pack_arrays(region: np.ndarray, arrays: Sequence[np.ndarray]
                ) -> List[Tuple[int, str, Tuple[int, ...]]]:
    """Copy ``arrays`` into a ``uint8`` region view; return their descriptors.

    Each descriptor is ``(offset_within_region, dtype.str, shape)`` — exactly
    what :func:`unpack_arrays` needs to rebuild zero-copy views on the other
    side of a shared-memory segment.  Raises ``ValueError`` when the region
    is too small (callers size regions with :func:`packed_nbytes`).
    """
    descs: List[Tuple[int, str, Tuple[int, ...]]] = []
    offset = 0
    for array in arrays:
        array = np.ascontiguousarray(array)
        end = offset + array.nbytes
        if end > region.nbytes:
            raise ValueError(
                f"region of {region.nbytes} bytes cannot hold "
                f"{packed_nbytes(arrays)} packed bytes")
        if array.nbytes:
            region[offset:end] = array.view(np.uint8).reshape(-1)
        descs.append((offset, array.dtype.str, tuple(array.shape)))
        offset = _align_up(end)
    return descs


def unpack_arrays(region: np.ndarray,
                  descs: Sequence[Tuple[int, str, Tuple[int, ...]]]
                  ) -> List[np.ndarray]:
    """Rebuild zero-copy array views from :func:`pack_arrays` descriptors."""
    out: List[np.ndarray] = []
    for offset, dtype, shape in descs:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        nbytes = count * dt.itemsize
        view = region[offset:offset + nbytes].view(dt).reshape(tuple(shape))
        out.append(view)
    return out


class SlabArena:
    """Owner-side bump allocator over a chain of shared-memory segments.

    This is the growth/ring API of the process backend's zero-copy comm
    plane: per call, the parent :meth:`reserve`\\ s a region (for the packed
    frontier going out, or as a per-strip output grant workers write into),
    ships the region's transportable :meth:`ref`, and :meth:`release`\\ s it
    once the call's data has been consumed.  Allocation is a bump cursor
    that resets to 0 whenever the current segment has no outstanding
    regions — with the FIFO consumption pattern of pipelined calls the same
    bytes are recycled call after call.  When a reservation does not fit, the
    arena grows **geometrically** into a fresh segment (a new *generation*);
    superseded generations are retired (closed + unlinked) as soon as their
    last outstanding region is released, so steady-state footprint is one
    segment.  Attach-side, :class:`SlabReader` caches one attachment per
    arena and re-attaches when a ref carries a newer generation.
    """

    __slots__ = ("arena_id", "capacity", "generation", "grow_count",
                 "bytes_reserved", "_segments", "_outstanding", "_cursor",
                 "_closed")

    def __init__(self, arena_id: str, initial_bytes: int = 1 << 16):
        self.arena_id = arena_id
        self.capacity = max(_align_up(initial_bytes), _SLAB_ALIGN)
        self.generation = 0
        self.grow_count = 0
        self.bytes_reserved = 0
        self._segments: Dict[int, SharedSlab] = {0: SharedSlab.alloc(self.capacity)}
        self._outstanding: Dict[int, int] = {0: 0}
        self._cursor = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def reserve(self, nbytes: int) -> Tuple[int, int, int]:
        """Reserve a region of >= ``nbytes``; returns ``(gen, offset, size)``."""
        if self._closed:
            raise BackendError(f"arena {self.arena_id!r} is closed")
        size = max(_align_up(nbytes), _SLAB_ALIGN)
        gen = self.generation
        if self._cursor + size > self.capacity:
            if self._outstanding[gen] == 0 and size <= self.capacity:
                self._cursor = 0  # segment fully consumed: recycle in place
            else:
                new_cap = max(self.capacity * 2, size)
                self.generation = gen = gen + 1
                self.grow_count += 1
                self._segments[gen] = SharedSlab.alloc(new_cap)
                self._outstanding[gen] = 0
                self.capacity = new_cap
                self._cursor = 0
                self._retire()
        offset = self._cursor
        self._cursor += size
        self._outstanding[gen] += 1
        self.bytes_reserved += size
        return (gen, offset, size)

    def release(self, region: Tuple[int, int, int]) -> None:
        """Return a region to the arena (the FIFO consumption side)."""
        gen = region[0]
        if self._closed or gen not in self._outstanding:
            return
        self._outstanding[gen] -= 1
        if self._outstanding[gen] == 0:
            if gen == self.generation:
                self._cursor = 0
            else:
                self._retire()

    def _retire(self) -> None:
        """Unlink superseded generations with no outstanding regions."""
        for gen in [g for g, n in self._outstanding.items()
                    if n == 0 and g != self.generation]:
            slab = self._segments.pop(gen)
            slab.close()
            slab.unlink()
            del self._outstanding[gen]

    # ------------------------------------------------------------------ #
    def ref(self, region: Tuple[int, int, int]) -> Tuple[str, int, str, int, int, int]:
        """Transportable handle: everything :class:`SlabReader` needs."""
        gen, offset, size = region
        slab = self._segments[gen]
        return (self.arena_id, gen, slab.name, slab.array.nbytes, offset, size)

    def view(self, region: Tuple[int, int, int]) -> np.ndarray:
        """Owner-side ``uint8`` view of a reserved region."""
        gen, offset, size = region
        return self._segments[gen].array[offset:offset + size]

    def segment_names(self) -> List[str]:
        return [slab.name for slab in self._segments.values()]

    @property
    def outstanding(self) -> int:
        return sum(self._outstanding.values())

    def destroy(self) -> None:
        """Close + unlink every segment (idempotent; owner-side shutdown)."""
        if self._closed:
            return
        self._closed = True
        for slab in self._segments.values():
            slab.close()
            slab.unlink()
        self._segments.clear()
        self._outstanding.clear()


class SlabReader:
    """Attach-side cache of arena segments, pruned by generation.

    Workers hold one reader for every arena they see (the engine input arena
    plus their strips' output arenas).  Refs arrive inside control records;
    the reader attaches each arena's segment once and re-attaches only when
    a ref names a newer generation — the parent's allocation is monotone per
    arena, and per-worker pipe FIFO guarantees a worker never sees an older
    generation after a newer one.  Superseded attachments go to a graveyard
    whose closes are retried lazily: at supersession time the worker's own
    frame typically still holds views into the old mapping (the previous
    call's vectors), so an eager ``close()`` would fail with ``BufferError``
    and leave the orphaned ``SharedMemory`` to spray "exception ignored"
    tracebacks from ``__del__`` at gc time.  One call later those views are
    gone and the deferred close succeeds quietly.
    """

    __slots__ = ("_slabs", "_graveyard")

    def __init__(self):
        #: arena_id -> (generation, SharedSlab)
        self._slabs: Dict[str, Tuple[int, SharedSlab]] = {}
        #: superseded attachments whose mappings may still have live views
        self._graveyard: List[SharedSlab] = []

    def _sweep(self) -> None:
        self._graveyard = [slab for slab in self._graveyard
                           if not slab.try_close()]

    def region(self, ref: Tuple[str, int, str, int, int, int]) -> np.ndarray:
        """The ``uint8`` view of a region ref (attaching/pruning as needed)."""
        arena_id, gen, name, seg_nbytes, offset, size = ref
        cached = self._slabs.get(arena_id)
        if cached is None or cached[0] < gen:
            if cached is not None:
                self._graveyard.append(cached[1])
            self._sweep()
            slab = SharedSlab.attach(name, (seg_nbytes,), np.dtype(np.uint8).str)
            self._slabs[arena_id] = (gen, slab)
        else:
            slab = cached[1]
        return slab.array[offset:offset + size]

    def close(self) -> None:
        for _gen, slab in self._slabs.values():
            slab.close()
        self._slabs.clear()
        for slab in self._graveyard:
            slab.close()
        self._graveyard.clear()


class BlockBuffers:
    """Reusable flat buffers for the fused block kernel's (row, vector-id) pairs.

    The fused kernel (:mod:`repro.core.spmspv_block`) expands the shared
    column-union gather into one flat array of (row, vector-id, value) pairs —
    its single masked scatter — and merges them per (vector, bucket) segment
    (or, in the legacy ``merge="global"`` mode, with one composite-key sort
    over ``keys``).  These parallel arrays back that expansion; like the
    :class:`~repro.core.buckets.BucketStore` they are allocated once and
    regrown geometrically, so iterative batched workloads (multi-source BFS,
    blocked PageRank) perform zero per-iteration slab allocations.
    The merge-strategy-specific slabs are allocated lazily, each only when
    its strategy first runs: ``keys`` (int64 composite keys) belongs to the
    legacy global sort, ``sort_keys`` (the int16 digit-staging slab of
    :func:`~repro.core.buckets.stable_row_argsort` — NumPy radix-sorts only
    keys this narrow, wider stable sorts fall back to comparison sorting)
    to the segmented merge, so neither strategy pins the other's memory.
    """

    __slots__ = ("capacity", "rows", "keys", "values", "sort_keys")

    def __init__(self, capacity: int, dtype=np.float64, *,
                 keys: bool = False, sort_keys: bool = False):
        self.capacity = max(int(capacity), 1)
        self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
        self.keys = np.empty(self.capacity, dtype=np.int64) if keys else None
        self.values = np.empty(self.capacity, dtype=dtype)
        self.sort_keys = np.empty(self.capacity, dtype=np.int16) if sort_keys else None

    def ensure_capacity(self, needed: int, dtype=None, *,
                        keys: bool = False, sort_keys: bool = False) -> bool:
        """Grow/retype the backing arrays; returns True if a reallocation happened."""
        if needed > self.capacity or (dtype is not None
                                      and np.dtype(dtype) != self.values.dtype):
            self.capacity = max(needed, self.capacity)
            self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
            self.values = np.empty(self.capacity,
                                   dtype=dtype if dtype is not None else self.values.dtype)
            if keys or self.keys is not None:
                self.keys = np.empty(self.capacity, dtype=np.int64)
            if sort_keys or self.sort_keys is not None:
                self.sort_keys = np.empty(self.capacity, dtype=np.int16)
            return True
        grown = False
        if keys and self.keys is None:
            self.keys = np.empty(self.capacity, dtype=np.int64)
            grown = True
        if sort_keys and self.sort_keys is None:
            self.sort_keys = np.empty(self.capacity, dtype=np.int16)
            grown = True
        return grown


class SpMSpVWorkspace:
    """Every reusable buffer an SpMSpV kernel needs, preallocated once per matrix.

    Pass a workspace to any kernel's ``workspace=`` parameter — or, more
    conveniently, run through an :class:`~repro.core.engine.SpMSpVEngine`,
    which owns one workspace and threads it through every call.
    """

    def __init__(self, nrows: int, *, capacity: int = 1, dtype=np.float64,
                 semiring: Semiring = PLUS_TIMES):
        self.nrows = int(nrows)
        self.bucket_store = BucketStore(max(int(capacity), 1), dtype=dtype)
        self.spa = SparseAccumulator(self.nrows, semiring=semiring, dtype=dtype)
        self.scratch = DenseScratch(self.nrows, dtype=dtype)
        #: block-expansion buffers, created lazily on the first fused block call
        #: so single-vector workloads never pay for them
        self.block: Optional[BlockBuffers] = None
        #: buffer (re)allocations performed, including the three at construction
        self.allocations = 3
        #: kernel calls served from already-allocated buffers
        self.acquisitions = 0

    # ------------------------------------------------------------------ #
    def check_rows(self, m: int) -> None:
        if m != self.nrows:
            raise DimensionMismatchError(
                f"workspace is bound to {self.nrows} rows but the matrix has {m}")

    def acquire_buckets(self, needed: int, dtype=None) -> BucketStore:
        """The bucket store, grown/retyped if this multiplication needs it."""
        self.acquisitions += 1
        store = self.bucket_store
        if needed > store.capacity or (dtype is not None
                                       and np.dtype(dtype) != store.values.dtype):
            self.allocations += 1
        store.ensure_capacity(needed, dtype=dtype)
        return store

    def acquire_spa(self, semiring: Semiring, dtype=None) -> SparseAccumulator:
        """The shared SPA, logically cleared (O(1) epoch bump) for a new call."""
        self.acquisitions += 1
        if dtype is not None and self.spa.values.dtype != np.dtype(dtype):
            # stamp/epoch survive: slots are re-initialized on first touch anyway
            self.spa.values = np.zeros(self.nrows, dtype=dtype)
            self.allocations += 1
        self.spa.reset(semiring)
        return self.spa

    def acquire_scratch(self, dtype=None) -> DenseScratch:
        """The dense merge scratch, retyped if the value dtype changed."""
        self.acquisitions += 1
        if self.scratch.ensure_dtype(dtype):
            self.allocations += 1
        return self.scratch

    def acquire_block(self, needed: int, dtype=None, *,
                      keys: bool = False, sort_keys: bool = False) -> BlockBuffers:
        """The fused-kernel pair buffers, grown/retyped for this block multiply."""
        self.acquisitions += 1
        if self.block is None:
            self.block = BlockBuffers(needed, dtype=dtype if dtype is not None
                                      else np.float64, keys=keys,
                                      sort_keys=sort_keys)
            self.allocations += 1
        elif self.block.ensure_capacity(needed, dtype=dtype, keys=keys,
                                        sort_keys=sort_keys):
            self.allocations += 1
        return self.block

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Reuse statistics for the reporting layer."""
        saved = max(self.acquisitions - self.allocations, 0)
        return {
            "acquisitions": self.acquisitions,
            "allocations": self.allocations,
            "allocations_saved": saved,
            "reuse_fraction": saved / self.acquisitions if self.acquisitions else 0.0,
            "bucket_capacity": self.bucket_store.capacity,
            "spa_rows": self.spa.m,
            "block_capacity": self.block.capacity if self.block is not None else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVWorkspace(nrows={self.nrows}, "
                f"acquisitions={self.acquisitions}, allocations={self.allocations})")


def as_workspace(workspace) -> Optional["SpMSpVWorkspace"]:
    """Normalize a kernel's ``workspace=`` argument.

    Kernels historically accepted a bare :class:`BucketStore`; that spelling
    keeps working (it is wrapped into nothing — the caller-owned store is used
    directly), while richer callers pass a full :class:`SpMSpVWorkspace`.
    Returns the workspace if one was given, else None.
    """
    if workspace is None or isinstance(workspace, SpMSpVWorkspace):
        return workspace
    if isinstance(workspace, BucketStore):
        return None  # bare store: handled by the bucket kernel directly
    raise TypeError(
        f"workspace must be an SpMSpVWorkspace or BucketStore, got {type(workspace)!r}")
