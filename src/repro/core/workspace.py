"""Persistent per-matrix workspaces: the §III-A "Memory allocation" optimization.

The paper preallocates the bucket storage and the SPA once and reuses them
across the hundreds of SpMSpV calls an iterative graph algorithm performs
("all memory needed ... allocated at the beginning ... reused"), instead of
paying an allocation per multiplication.  :class:`SpMSpVWorkspace` bundles
every reusable buffer the package's kernels need:

* a :class:`~repro.core.buckets.BucketStore` for the bucket algorithm's
  scaled-entry scatter (Step 1 of Algorithm 1),
* a :class:`~repro.core.spa.SparseAccumulator` with O(1) epoch reset,
* a :class:`DenseScratch` — the dense accumulation buffer the CombBLAS and
  GraphMat style baselines merge through.

A workspace is bound to a row dimension ``m`` (the matrix it serves); value
buffers regrow or change dtype lazily, and every acquisition / reallocation
is counted so :mod:`repro.analysis.reporting` can report how much allocation
traffic the reuse saved.
"""

from __future__ import annotations

from multiprocessing import shared_memory as _shared_memory
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .._typing import INDEX_DTYPE
from ..errors import DimensionMismatchError
from ..semiring import PLUS_TIMES, Semiring
from .buckets import BucketStore
from .spa import SparseAccumulator


def merge_by_row(rows: np.ndarray, values: np.ndarray, semiring: Semiring,
                 *, sort_output: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Combine entries that share a row id with the semiring ADD.

    Output is row-sorted, or in first-touch order when ``sort_output`` is
    false.  This is the canonical merge every vector-driven baseline uses
    (re-exported by :mod:`repro.baselines.common`); :class:`DenseScratch`
    publishes its result through a persistent buffer without recomputing it,
    which is what keeps the two paths bit-identical.
    """
    if len(rows) == 0:
        return rows, values
    order = np.argsort(rows, kind="stable")
    sr, sv = rows[order], values[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sr)) + 1))
    uind = sr[starts]
    merged = semiring.reduceat(sv, starts)
    if not sort_output:
        perm = np.argsort(order[starts], kind="stable")
        uind, merged = uind[perm], merged[perm]
    return uind, merged


class DenseScratch:
    """A persistent dense accumulation buffer over the row space ``0..m-1``.

    This is the workspace the row-split baselines merge through: gathered
    (row, value) pairs are scattered into a dense array initialized with the
    semiring's additive identity at exactly the touched slots (partial
    initialization), then the touched slots are read back out.  The buffer is
    allocated once and reused; only the touched slots are re-initialized per
    call, so reuse costs O(touched), not O(m).
    """

    __slots__ = ("m", "values",)

    def __init__(self, m: int, dtype=np.float64):
        self.m = int(m)
        self.values = np.empty(self.m, dtype=dtype)

    @property
    def dtype(self):
        return self.values.dtype

    def ensure_dtype(self, dtype) -> bool:
        """Reallocate for a new value dtype; returns True if a reallocation happened."""
        if dtype is not None and self.values.dtype != np.dtype(dtype):
            self.values = np.empty(self.m, dtype=dtype)
            return True
        return False

    def merge(self, rows: np.ndarray, values: np.ndarray, semiring: Semiring, *,
              sort_output: bool = True, publish: bool = False
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Combine entries sharing a row id with the semiring ADD, via the scratch.

        The reduction is :func:`merge_by_row` itself (not a scatter
        ``ufunc.at`` loop, whose sequential rounding differs from
        ``reduceat``'s pairwise summation), so the workspace path is
        bit-identical to the fresh path by construction.  With ``publish``
        the merged values are additionally published into (and gathered back
        from) the persistent dense buffer — the baselines' strip-private SPA
        made observable.  The publish/gather is O(nnz_y) work on top of the
        merge and changes no output bit and no work metric (the baselines'
        SPA accounting is analytic, not instrumented), so it is opt-in:
        engine-internal calls skip it, callers that want to inspect the
        dense state (or model its memory traffic in wall time) ask for it.
        """
        if len(rows) == 0:
            return rows, values
        self.ensure_dtype(np.asarray(values).dtype)
        uind, merged = merge_by_row(rows, values, semiring, sort_output=sort_output)
        if not publish:
            return uind, merged
        uind = uind.astype(INDEX_DTYPE, copy=False)
        self.values[uind] = merged
        return uind, self.values[uind].copy()


class SharedSlab:
    """A named, shared-memory-backed array slab (one ndarray, one segment).

    This is the unit the process backend ships strip data with: the owning
    process :meth:`create`\\ s a slab per strip array (CSC ``indptr`` /
    ``indices`` / ``data``), workers :meth:`attach` by name and wrap the
    same physical pages in a zero-copy ndarray view, so a strip is paid for
    once at engine build no matter how many calls the workers serve.
    Lifecycle: every process that opened a slab calls :meth:`close`; the
    owner additionally calls :meth:`unlink` (idempotent) to release the
    segment — :class:`~repro.parallel.backends.ProcessBackend` does both on
    shutdown and from a gc finalizer, so no ``/dev/shm`` block outlives the
    engine.
    """

    __slots__ = ("shm", "array", "owner", "_meta")

    def __init__(self, shm: _shared_memory.SharedMemory, array: np.ndarray,
                 owner: bool):
        self.shm = shm
        self.array = array
        self.owner = owner
        self._meta = (shm.name, tuple(array.shape), array.dtype.str)

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedSlab":
        """Copy ``array`` into a fresh named segment (size >= 1 byte: empty
        arrays get a minimal segment so their names still round-trip)."""
        array = np.ascontiguousarray(array)
        shm = _shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.frombuffer(shm.buf, dtype=array.dtype,
                             count=array.size).reshape(array.shape)
        view[...] = array
        return cls(shm, view, owner=True)

    @classmethod
    def attach(cls, name: str, shape: Sequence[int], dtype: str, *,
               untrack: bool = False) -> "SharedSlab":
        """Attach to an existing segment and view it as ``(shape, dtype)``.

        ``untrack`` unregisters the segment from this process's
        ``resource_tracker``: an attaching worker must not trigger the
        tracker's destroy-on-exit behaviour for a segment the owner is still
        serving (CPython registers on attach as well as on create).
        """
        shm = _shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        array = np.frombuffer(shm.buf, dtype=dt, count=count).reshape(tuple(shape))
        return cls(shm, array, owner=False)

    @property
    def meta(self) -> Tuple[str, Tuple[int, ...], str]:
        """``(segment name, shape, dtype.str)`` — everything attach() needs."""
        return self._meta

    @property
    def name(self) -> str:
        return self._meta[0]

    def close(self) -> None:
        """Drop this process's view and mapping (idempotent, reference-safe)."""
        self.array = None
        try:
            self.shm.close()
        except BufferError:  # a caller still holds a view; the fd stays open
            pass

    def unlink(self) -> None:
        """Release the segment itself (owner side; idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


class BlockBuffers:
    """Reusable flat buffers for the fused block kernel's (row, vector-id) pairs.

    The fused kernel (:mod:`repro.core.spmspv_block`) expands the shared
    column-union gather into one flat array of (row, vector-id, value) pairs —
    its single masked scatter — and merges them per (vector, bucket) segment
    (or, in the legacy ``merge="global"`` mode, with one composite-key sort
    over ``keys``).  These parallel arrays back that expansion; like the
    :class:`~repro.core.buckets.BucketStore` they are allocated once and
    regrown geometrically, so iterative batched workloads (multi-source BFS,
    blocked PageRank) perform zero per-iteration slab allocations.
    The merge-strategy-specific slabs are allocated lazily, each only when
    its strategy first runs: ``keys`` (int64 composite keys) belongs to the
    legacy global sort, ``sort_keys`` (the int16 digit-staging slab of
    :func:`~repro.core.buckets.stable_row_argsort` — NumPy radix-sorts only
    keys this narrow, wider stable sorts fall back to comparison sorting)
    to the segmented merge, so neither strategy pins the other's memory.
    """

    __slots__ = ("capacity", "rows", "keys", "values", "sort_keys")

    def __init__(self, capacity: int, dtype=np.float64, *,
                 keys: bool = False, sort_keys: bool = False):
        self.capacity = max(int(capacity), 1)
        self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
        self.keys = np.empty(self.capacity, dtype=np.int64) if keys else None
        self.values = np.empty(self.capacity, dtype=dtype)
        self.sort_keys = np.empty(self.capacity, dtype=np.int16) if sort_keys else None

    def ensure_capacity(self, needed: int, dtype=None, *,
                        keys: bool = False, sort_keys: bool = False) -> bool:
        """Grow/retype the backing arrays; returns True if a reallocation happened."""
        if needed > self.capacity or (dtype is not None
                                      and np.dtype(dtype) != self.values.dtype):
            self.capacity = max(needed, self.capacity)
            self.rows = np.empty(self.capacity, dtype=INDEX_DTYPE)
            self.values = np.empty(self.capacity,
                                   dtype=dtype if dtype is not None else self.values.dtype)
            if keys or self.keys is not None:
                self.keys = np.empty(self.capacity, dtype=np.int64)
            if sort_keys or self.sort_keys is not None:
                self.sort_keys = np.empty(self.capacity, dtype=np.int16)
            return True
        grown = False
        if keys and self.keys is None:
            self.keys = np.empty(self.capacity, dtype=np.int64)
            grown = True
        if sort_keys and self.sort_keys is None:
            self.sort_keys = np.empty(self.capacity, dtype=np.int16)
            grown = True
        return grown


class SpMSpVWorkspace:
    """Every reusable buffer an SpMSpV kernel needs, preallocated once per matrix.

    Pass a workspace to any kernel's ``workspace=`` parameter — or, more
    conveniently, run through an :class:`~repro.core.engine.SpMSpVEngine`,
    which owns one workspace and threads it through every call.
    """

    def __init__(self, nrows: int, *, capacity: int = 1, dtype=np.float64,
                 semiring: Semiring = PLUS_TIMES):
        self.nrows = int(nrows)
        self.bucket_store = BucketStore(max(int(capacity), 1), dtype=dtype)
        self.spa = SparseAccumulator(self.nrows, semiring=semiring, dtype=dtype)
        self.scratch = DenseScratch(self.nrows, dtype=dtype)
        #: block-expansion buffers, created lazily on the first fused block call
        #: so single-vector workloads never pay for them
        self.block: Optional[BlockBuffers] = None
        #: buffer (re)allocations performed, including the three at construction
        self.allocations = 3
        #: kernel calls served from already-allocated buffers
        self.acquisitions = 0

    # ------------------------------------------------------------------ #
    def check_rows(self, m: int) -> None:
        if m != self.nrows:
            raise DimensionMismatchError(
                f"workspace is bound to {self.nrows} rows but the matrix has {m}")

    def acquire_buckets(self, needed: int, dtype=None) -> BucketStore:
        """The bucket store, grown/retyped if this multiplication needs it."""
        self.acquisitions += 1
        store = self.bucket_store
        if needed > store.capacity or (dtype is not None
                                       and np.dtype(dtype) != store.values.dtype):
            self.allocations += 1
        store.ensure_capacity(needed, dtype=dtype)
        return store

    def acquire_spa(self, semiring: Semiring, dtype=None) -> SparseAccumulator:
        """The shared SPA, logically cleared (O(1) epoch bump) for a new call."""
        self.acquisitions += 1
        if dtype is not None and self.spa.values.dtype != np.dtype(dtype):
            # stamp/epoch survive: slots are re-initialized on first touch anyway
            self.spa.values = np.zeros(self.nrows, dtype=dtype)
            self.allocations += 1
        self.spa.reset(semiring)
        return self.spa

    def acquire_scratch(self, dtype=None) -> DenseScratch:
        """The dense merge scratch, retyped if the value dtype changed."""
        self.acquisitions += 1
        if self.scratch.ensure_dtype(dtype):
            self.allocations += 1
        return self.scratch

    def acquire_block(self, needed: int, dtype=None, *,
                      keys: bool = False, sort_keys: bool = False) -> BlockBuffers:
        """The fused-kernel pair buffers, grown/retyped for this block multiply."""
        self.acquisitions += 1
        if self.block is None:
            self.block = BlockBuffers(needed, dtype=dtype if dtype is not None
                                      else np.float64, keys=keys,
                                      sort_keys=sort_keys)
            self.allocations += 1
        elif self.block.ensure_capacity(needed, dtype=dtype, keys=keys,
                                        sort_keys=sort_keys):
            self.allocations += 1
        return self.block

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Reuse statistics for the reporting layer."""
        saved = max(self.acquisitions - self.allocations, 0)
        return {
            "acquisitions": self.acquisitions,
            "allocations": self.allocations,
            "allocations_saved": saved,
            "reuse_fraction": saved / self.acquisitions if self.acquisitions else 0.0,
            "bucket_capacity": self.bucket_store.capacity,
            "spa_rows": self.spa.m,
            "block_capacity": self.block.capacity if self.block is not None else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVWorkspace(nrows={self.nrows}, "
                f"acquisitions={self.acquisitions}, allocations={self.allocations})")


def as_workspace(workspace) -> Optional["SpMSpVWorkspace"]:
    """Normalize a kernel's ``workspace=`` argument.

    Kernels historically accepted a bare :class:`BucketStore`; that spelling
    keeps working (it is wrapped into nothing — the caller-owned store is used
    directly), while richer callers pass a full :class:`SpMSpVWorkspace`.
    Returns the workspace if one was given, else None.
    """
    if workspace is None or isinstance(workspace, SpMSpVWorkspace):
        return workspace
    if isinstance(workspace, BucketStore):
        return None  # bare store: handled by the bucket kernel directly
    raise TypeError(
        f"workspace must be an SpMSpVWorkspace or BucketStore, got {type(workspace)!r}")
