"""Elementwise operations on sparse vectors.

The graph algorithms of §I (BFS, MIS, matching, PageRank, SSSP, local
clustering) interleave SpMSpV with GraphBLAS-style vector operations:
elementwise add/multiply, structural masking, and assignment.  These helpers
keep those algorithms readable while staying vectorized.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._typing import INDEX_DTYPE
from ..errors import DimensionError, DimensionMismatchError
from ..formats.bitvector import BitVector
from ..formats.sparse_vector import SparseVector
from ..semiring import PLUS_TIMES, Semiring


def _check_same_length(a: SparseVector, b: SparseVector) -> None:
    if a.n != b.n:
        raise DimensionMismatchError(f"vectors have different lengths: {a.n} vs {b.n}")


def ewise_add(a: SparseVector, b: SparseVector, *, semiring: Semiring = PLUS_TIMES,
              ) -> SparseVector:
    """Union elementwise combine: indices present in either vector, values combined
    with the semiring's ADD where both are present."""
    _check_same_length(a, b)
    if a.nnz == 0:
        return b.copy().sort()
    if b.nnz == 0:
        return a.copy().sort()
    indices = np.concatenate([a.indices, b.indices])
    values = np.concatenate([a.values.astype(np.result_type(a.dtype, b.dtype)),
                             b.values.astype(np.result_type(a.dtype, b.dtype))])
    order = np.argsort(indices, kind="stable")
    si, sv = indices[order], values[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(si)) + 1))
    uidx = si[starts]
    combined = semiring.reduceat(sv, starts)
    return SparseVector(a.n, uidx, combined, sorted=True, check=False)


def ewise_mult(a: SparseVector, b: SparseVector, *, op: Optional[Callable] = None
               ) -> SparseVector:
    """Intersection elementwise combine: only indices present in both vectors survive.

    ``op`` defaults to multiplication.
    """
    _check_same_length(a, b)
    op = op if op is not None else (lambda x, y: x * y)
    if a.nnz == 0 or b.nnz == 0:
        return SparseVector.empty(a.n)
    a_s, b_s = a.sort(), b.sort()
    common, a_pos, b_pos = np.intersect1d(a_s.indices, b_s.indices,
                                          assume_unique=True, return_indices=True)
    if len(common) == 0:
        return SparseVector.empty(a.n)
    return SparseVector(a.n, common, op(a_s.values[a_pos], b_s.values[b_pos]),
                        sorted=True, check=False)


def mask_vector(x: SparseVector, mask: SparseVector, *, complement: bool = False
                ) -> SparseVector:
    """Structural mask: keep entries of ``x`` whose index is (not, if complement) in ``mask``."""
    _check_same_length(x, mask)
    return x.select(mask.indices, complement=complement)


def check_operands(matrix, x: SparseVector) -> None:
    """Shared conformance check of every SpMSpV signature (``A`` is m-by-n, ``x`` length n)."""
    if matrix.ncols != x.n:
        raise DimensionMismatchError(
            f"matrix has {matrix.ncols} columns but vector has length {x.n}")


def check_mask(mask: Optional[SparseVector], nrows: int) -> None:
    """Validate that an output mask lives in the matrix's row space.

    An output mask selects rows of ``y = A·x`` and must therefore have length
    ``nrows``.  Historically a mask of the wrong length was silently accepted
    (``select`` only compares indices, so an undersized mask just dropped
    rows); now every kernel raises instead, in both the late (finalize-time)
    and early (scatter-time) masking paths.
    """
    if mask is not None and mask.n != nrows:
        raise DimensionError(
            f"output mask has length {mask.n} but the matrix has {nrows} rows; "
            f"masks select rows of y = A·x and must be of length nrows")


def mask_bitmap(mask: Optional[SparseVector], nrows: int) -> Optional[BitVector]:
    """The packed row-membership bitmap the early-masking kernels probe.

    Returns None for no mask.  The bitmap spans the matrix's row space, so
    :meth:`~repro.formats.bitvector.BitVector.are_set` is a valid O(1) probe
    for any gathered row id (:func:`check_mask` is re-run here as the guard).
    """
    if mask is None:
        return None
    check_mask(mask, nrows)
    return BitVector.from_indices(nrows, mask.indices)


def mask_keep(bitmap: Optional[BitVector], rows: np.ndarray, *,
              complement: bool = False) -> Optional[np.ndarray]:
    """Boolean keep-filter of scattered row ids against a mask bitmap.

    This is the scatter-time (early) form of the GraphBLAS structural mask:
    an entry bound for row ``i`` survives iff ``i`` is in the mask (or not
    in it, under ``complement``).  Because masking drops *whole rows*, the
    surviving rows' addend streams — and therefore their floating-point
    reductions and first-touch order — are untouched, which is what keeps
    early-masked kernels bit-identical to finalize-time masking.  Returns
    None when nothing is filtered (no bitmap).
    """
    if bitmap is None:
        return None
    member = bitmap.are_set(rows) if len(rows) else np.empty(0, dtype=bool)
    return ~member if complement else member


def finalize_output(y: SparseVector, semiring: Semiring, *,
                    mask: Optional[SparseVector] = None,
                    mask_complement: bool = False) -> SparseVector:
    """Standard SpMSpV output post-processing: apply the mask, prune identities.

    An output entry equal to the semiring's additive identity carries no
    information (it is what an absent entry means), so it is dropped.  Keying
    this off ``add_identity`` instead of ``semiring is PLUS_TIMES`` makes
    user-defined plus-times-like semirings behave identically to the builtin.
    """
    if mask is not None:
        check_mask(mask, y.n)
        y = y.select(mask.indices, complement=mask_complement)
    return y.drop_values(semiring.add_identity)


def assign_scalar(x: SparseVector, indices: np.ndarray, value: float) -> SparseVector:
    """Return a copy of ``x`` with ``value`` assigned at the given indices."""
    indices = np.asarray(indices, dtype=INDEX_DTYPE)
    merged_idx = np.concatenate([x.indices, indices])
    merged_val = np.concatenate([x.values.astype(np.float64),
                                 np.full(len(indices), value, dtype=np.float64)])
    # later assignments win: keep the last occurrence of each index
    order = np.argsort(merged_idx, kind="stable")
    si, sv = merged_idx[order], merged_val[order]
    last_of_run = np.concatenate([np.flatnonzero(np.diff(si)), [len(si) - 1]]) if len(si) \
        else np.empty(0, dtype=np.int64)
    return SparseVector(x.n, si[last_of_run], sv[last_of_run], sorted=True, check=False)


def reduce_vector(x: SparseVector, *, semiring: Semiring = PLUS_TIMES) -> float:
    """Reduce all stored values with the semiring's ADD."""
    return float(semiring.reduce(x.values)) if x.nnz else float(semiring.add_identity)


def where_values(x: SparseVector, predicate: Callable[[np.ndarray], np.ndarray]
                 ) -> SparseVector:
    """Keep only entries whose value satisfies ``predicate`` (vectorized boolean fn)."""
    if x.nnz == 0:
        return x.copy()
    keep = predicate(x.values)
    return SparseVector(x.n, x.indices[keep], x.values[keep], sorted=x.sorted, check=False)
