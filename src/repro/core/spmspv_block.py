"""Fused vector-block SpMSpV: the bucket algorithm over (row, vector-id) pairs.

:meth:`SpMSpVEngine.multiply_many <repro.core.engine.SpMSpVEngine.multiply_many>`
historically looped k independent :func:`~repro.core.spmspv_bucket.spmspv_bucket`
calls — k column gathers, k scatters, k merges, k rounds of interpreter
overhead.  :func:`spmspv_bucket_block` is the genuinely fused variant: the
whole :class:`~repro.formats.vector_block.SparseVectorBlock` is executed with

* **one gather** — the shared column union is pulled out of the matrix once
  (:meth:`~repro.formats.csc.CSCMatrix.gather_columns_block`) and the
  semiring multiply is broadcast across all k vectors in a single vectorized
  pass; columns selected by several vectors are never re-gathered;
* **one masked scatter** — the gathered entries are expanded into a flat
  array of ``(row, vector-id)`` pairs (each vector's pairs in its *original*
  gather order, replayed from the block's stored positions) living in
  persistent :class:`~repro.core.workspace.BlockBuffers`.  Per-vector masks
  are folded in right here: a packed row bitmap
  (:class:`~repro.formats.bitvector.BitVector`) is probed per gathered entry
  and dead ``(row, vector-id)`` pairs never enter the buffers, so masked
  batched workloads (multi-source BFS frontiers, restricted PageRank) do
  O(surviving pairs) merge work;
* **one segmented merge** — pairs are already partitioned by vector (each
  vector's slice is contiguous), and each slice is merged with one stable
  row sort + run reduction.  Because buckets are ascending row ranges, the
  row sort *is* the bucket partition: the per-bucket segments fall out as
  contiguous runs located with binary searches, each priced independently
  and scheduled onto threads with the §III-A dynamic policy.  Compared with
  the historical single global sort of the composite key
  ``vector-id · m + row`` (still available as ``merge="global"``), the
  segmented merge sorts k short key streams of range ``m`` instead of one
  long stream of range ``k·m`` — no composite key construction, no
  div/mod decode, smaller sort keys, cache-resident segments.  Every
  ``(vector, row)`` run still contains exactly the entries the per-vector
  kernel would merge, in the same order, so the semiring reduction is
  **bit-identical** to k independent ``multiply`` calls (including unsorted
  inputs, first-touch unsorted output, and early-masked calls);
* **one output pass** — each vector's unique rows are permuted into its
  per-bucket output order and wrapped into k output vectors.

The four phases are priced like the per-vector bucket kernel — estimate /
bucketing / spa_merge / output, with the pair counts of Algorithm 1 applied
to (row, vector-id) pairs — and each vector's
:class:`~repro.core.result.SpMSpVResult` carries its proportional share of
the block's work, so the fused records sum to the block total (the gather
is charged once across the block: that is the fusion saving).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

import numpy as np

from .._typing import INDEX_DTYPE
from ..formats.csc import CSCMatrix
from ..formats.sparse_vector import SparseVector
from ..formats.vector_block import SparseVectorBlock
from ..machine.cache import estimate_column_gather_misses, estimate_scatter_misses
from ..parallel.context import ExecutionContext, default_context
from ..parallel.metrics import ExecutionRecord, PhaseRecord, WorkMetrics
from ..parallel.scheduler import schedule
from ..semiring import PLUS_TIMES, Semiring
from .buckets import bucket_of_rows, bucket_row_ranges, stable_row_argsort
from .result import SpMSpVResult
from .spmspv_bucket import _radix_sort_ops
from .vector_ops import check_mask, check_operands, finalize_output, mask_bitmap, mask_keep
from .workspace import BlockBuffers, SpMSpVWorkspace

#: merge strategies of the fused kernel: the segmented per-(vector, bucket)
#: merge (default) and the historical single global composite-key sort
MERGE_MODES = ("segmented", "global")


def _scaled_threads(totals: WorkMetrics, num_threads: int, share: float
                    ) -> List[WorkMetrics]:
    """Split one vector's share of block-phase totals evenly over the threads.

    One scaled record repeated ``num_threads`` times: consumers only read, and
    the cost model prices replicated objects once.
    """
    return [totals.scale(share / num_threads)] * num_threads


def _merge_vector_slice(rows: np.ndarray, vals: np.ndarray, semiring: Semiring,
                        *, sort_keys: Optional[np.ndarray], sorted_output: bool,
                        nb: int, m: int):
    """Merge one vector's contiguous pair slice: stable row sort + run reduction.

    Buckets are ascending row ranges, so the stable row sort (a staged
    15-bit-digit radix via :func:`~repro.core.buckets.stable_row_argsort`,
    not a comparison sort) simultaneously partitions the slice into its nb
    bucket segments *and* row-sorts each segment — exactly the result of the
    per-vector kernel's stable bucket scatter followed by per-bucket stable
    row sorts, hence the bit-identical addend order.  Returns
    ``(uind, merged, seg_sizes, seg_uniques)`` with the unique rows in the
    vector's output order (buckets ascending; rows ascending inside a bucket
    for sorted output, first touch otherwise).
    """
    order = stable_row_argsort(rows, m, staging=sort_keys)
    sr = rows[order]
    sv = vals[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sr)) + 1))
    uind = sr[starts]
    merged = semiring.reduceat(sv, starts)
    # per-bucket segment sizes / unique counts via binary search on the
    # sorted rows (no data movement: segmentation is free once rows are sorted)
    bounds = np.array([lo for lo, _hi in bucket_row_ranges(nb, m)] + [m],
                      dtype=INDEX_DTYPE)
    seg_sizes = np.diff(np.searchsorted(sr, bounds))
    seg_uniques = np.diff(np.searchsorted(uind, bounds))
    if not sorted_output:
        # first-touch order inside each bucket, exactly as the per-vector
        # kernel's unsorted variant: rank unique rows by the position of
        # their first occurrence in the vector's original pair stream
        first_pos = order[starts]
        bucket_u = bucket_of_rows(uind, nb, m)
        big = np.int64(max(len(rows), 1) + 1)
        comp = bucket_u.astype(np.int64) * big + first_pos.astype(np.int64)
        perm = np.argsort(comp, kind="stable")
        uind, merged = uind[perm], merged[perm]
    return uind, merged, seg_sizes, seg_uniques


def spmspv_bucket_block(matrix: CSCMatrix,
                        block: Union[SparseVectorBlock, Sequence[SparseVector]],
                        ctx: Optional[ExecutionContext] = None, *,
                        semiring: Semiring = PLUS_TIMES,
                        sorted_output: Optional[bool] = None,
                        masks: Optional[Sequence[Optional[SparseVector]]] = None,
                        mask_complement: bool = False,
                        early_mask: bool = True,
                        merge: str = "segmented",
                        workspace: Optional[SpMSpVWorkspace] = None
                        ) -> List[SpMSpVResult]:
    """Multiply one CSC matrix by a block of k sparse vectors in one fused pass.

    Parameters mirror :func:`~repro.core.spmspv_bucket.spmspv_bucket`, with
    ``block`` either a :class:`SparseVectorBlock` or a plain sequence of
    :class:`SparseVector` (packed on the fly) and ``masks`` an optional
    per-vector mask list (each mask of length ``nrows`` — anything else
    raises :class:`~repro.errors.DimensionError`).  ``early_mask`` folds the
    masks into the scatter (bit-identical to finalize-time masking, see
    module docstring); ``merge`` selects the segmented per-(vector, bucket)
    merge or the historical ``"global"`` composite-key sort — also
    bit-identical, kept for the perf-regression harness.
    ``sorted_output=None`` resolves per vector, exactly as the per-vector
    kernel does.  Returns one :class:`SpMSpVResult` per vector, indices and
    values exactly equal to k independent per-vector calls.
    """
    ctx = ctx if ctx is not None else default_context()
    if merge not in MERGE_MODES:
        raise ValueError(f"merge must be one of {MERGE_MODES}, got {merge!r}")
    if not isinstance(block, SparseVectorBlock):
        block = SparseVectorBlock.from_vectors(block)
    check_operands(matrix, block)
    if masks is not None and len(masks) != block.k:
        raise ValueError(f"got {block.k} vectors but {len(masks)} masks")
    if masks is not None:
        for m_i in masks:
            check_mask(m_i, matrix.nrows)
    ws = workspace if isinstance(workspace, SpMSpVWorkspace) else None
    if ws is not None:
        ws.check_rows(matrix.nrows)

    t_start = time.perf_counter()
    m, n = matrix.shape
    t = ctx.num_threads
    nb = ctx.num_buckets
    k = block.k
    u = block.union_nnz
    nnz_per_vec = block.nnz_per_vector()
    out_sorted = [sorted_output if sorted_output is not None
                  else (block.sorted_flags[i] and ctx.sorted_vectors)
                  for i in range(k)]
    bitmaps = ([mask_bitmap(masks[i], m) for i in range(k)]
               if early_mask and masks is not None else None)

    # ------------------------------------------------------------------ #
    # one gather over the whole column union (+ multiply, see below)
    # ------------------------------------------------------------------ #
    from ..baselines.common import gather_cost_chunks, priced_gather_phase

    col_weights, chunks = gather_cost_chunks(matrix, block.indices, t)

    # pair counts: gathered entry e fans out to one (row, vector-id) pair per
    # vector that stores entry src_g[e] of the union
    member_counts = block.member.sum(axis=1).astype(INDEX_DTYPE) if u else \
        np.empty(0, dtype=INDEX_DTYPE)
    pair_weights = (col_weights * member_counts) if u else col_weights
    df_per_vec = np.array(
        [int(col_weights[pos].sum()) if len(pos) else 0 for pos in block.positions],
        dtype=np.int64)
    total_pairs = int(df_per_vec.sum())
    total_g = int(col_weights.sum()) if u else 0

    # The multiply is broadcast across the (union gather) x (k vectors) slab
    # only while that slab stays close to the true pair count — dense,
    # heavily-shared blocks (PageRank deltas, overlapping BFS frontiers).  A
    # weakly-shared block would waste k/sharing times the multiplies (and a
    # (total, k) temporary) on products no vector needs, so it computes each
    # vector's df_i products directly during the expansion instead; both
    # paths produce identical scalars.
    broadcast = total_pairs > 0 and total_g * k <= 2 * total_pairs
    rows_g, vals_g, _src_g, scaled = matrix.gather_columns_block(
        block.indices, block.values if broadcast else None,
        multiply=semiring.multiply)
    out_dtype = np.result_type(matrix.dtype, block.dtype)

    # Phase 0: ESTIMATE-BUCKETS over the union (priced via the shared helpers)
    estimate_phase = priced_gather_phase(col_weights, chunks, name="estimate")
    for tm in estimate_phase.thread_metrics:
        tm.multiplications = 0   # the estimate pass only counts, it scales nothing
        tm.buffer_writes = nb    # per-(thread, bucket) counters

    # ------------------------------------------------------------------ #
    # one masked scatter: expand into flat (row, vector-id, value) pairs
    # ------------------------------------------------------------------ #
    # pairs dropped by an early mask never enter the buffers, so the buffers
    # are sized by the unmasked upper bound and filled to the surviving count
    use_small_keys = merge == "segmented" and m <= (1 << 30)
    if ws is not None:
        buffers = ws.acquire_block(max(total_pairs, 1), dtype=out_dtype,
                                   keys=merge == "global",
                                   sort_keys=use_small_keys)
    else:
        buffers = BlockBuffers(max(total_pairs, 1), dtype=out_dtype,
                               keys=merge == "global",
                               sort_keys=use_small_keys)
    exp_rows = buffers.rows
    exp_keys = buffers.keys  # None unless the global merge asked for the slab
    exp_vals = buffers.values

    # flat segment table of the union gather: column p of the union occupies
    # rows_g[starts_u[p] : starts_u[p] + col_weights[p]]
    starts_u = np.zeros(u + 1, dtype=np.int64)
    if u:
        np.cumsum(col_weights, out=starts_u[1:])
    seg_offsets = np.zeros(k + 1, dtype=np.int64)
    mask_probes = 0
    cursor = 0
    for i in range(k):
        pos = block.positions[i]
        df_i = int(df_per_vec[i])
        if df_i == 0:
            seg_offsets[i + 1] = cursor
            continue
        lengths = col_weights[pos]
        # replay vector i's own gather order from the compact union gather
        offs = np.zeros(len(pos), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offs[1:])
        gpos = (np.repeat(starts_u[pos], lengths)
                + np.arange(df_i, dtype=np.int64) - np.repeat(offs, lengths))
        rows_i = rows_g[gpos]
        keep = None
        if bitmaps is not None and bitmaps[i] is not None:
            # early masking: dead (row, vector-id) pairs are dropped before
            # they are scattered, merged or even multiplied
            mask_probes += df_i
            keep = mask_keep(bitmaps[i], rows_i, complement=mask_complement)
            rows_i, gpos = rows_i[keep], gpos[keep]
        lo, hi = cursor, cursor + len(rows_i)
        exp_rows[lo:hi] = rows_i
        if broadcast:
            exp_vals[lo:hi] = scaled[gpos, i]
        else:
            # same scalars as the broadcast slab (and as the per-vector
            # kernel): A values in this vector's gather order times its own
            # x value repeated over each column's entries
            xv = np.repeat(block.values[pos, i], lengths)
            if keep is not None:
                xv = xv[keep]
            exp_vals[lo:hi] = semiring.multiply(vals_g[gpos], xv)
        if merge == "global":
            np.add(exp_rows[lo:hi], np.int64(i) * m, out=exp_keys[lo:hi])
        seg_offsets[i + 1] = hi
        cursor = hi
    total_kept = cursor
    kept_per_vec = np.diff(seg_offsets)
    share = (kept_per_vec / total_kept) if total_kept else np.full(k, 1.0 / max(k, 1))

    bucketing_phase = PhaseRecord(name="bucketing", parallel=True)
    pairs_per_chunk = [int(pair_weights[chunk].sum()) if len(chunk) else 0
                      for chunk in chunks]
    entries_per_chunk = [int(col_weights[chunk].sum()) if len(chunk) else 0
                        for chunk in chunks]
    kept_fraction = total_kept / total_pairs if total_pairs else 1.0
    # only the masked vectors' pairs are probed: bill each chunk its share
    probe_fraction = mask_probes / total_pairs if total_pairs else 0.0
    for tid in range(t):
        kept_chunk = int(round(pairs_per_chunk[tid] * kept_fraction))
        metrics = WorkMetrics(
            vector_reads=len(chunks[tid]),
            colptr_reads=len(chunks[tid]),
            matrix_nnz_reads=entries_per_chunk[tid],
            bitmap_probes=int(round(pairs_per_chunk[tid] * probe_fraction)),
            multiplications=kept_chunk,
            bucket_writes=kept_chunk,
        )
        if ctx.private_buffer_size > 0:
            metrics.buffer_writes += kept_chunk
        metrics.cache_line_misses = estimate_column_gather_misses(
            len(chunks[tid]), entries_per_chunk[tid], n, input_sorted=True)
        bucketing_phase.thread_metrics.append(metrics)

    # ------------------------------------------------------------------ #
    # one merge: segmented per-(vector, bucket) by default, global sort legacy
    # ------------------------------------------------------------------ #
    merge_phase = PhaseRecord(name="spa_merge", parallel=True)
    # the merge working set is one bucket's row span per (bucket, vector) slice
    bucket_span_rows = max(1, -(-m // nb))
    uind_per_vec: List[np.ndarray] = [np.empty(0, dtype=INDEX_DTYPE)] * k
    uval_per_vec: List[np.ndarray] = [np.empty(0, dtype=out_dtype)] * k

    if total_kept and merge == "segmented":
        seg_sizes_all: List[int] = []
        seg_uniques_all: List[int] = []
        seg_sorted_all: List[bool] = []
        for i in range(k):
            lo, hi = int(seg_offsets[i]), int(seg_offsets[i + 1])
            if hi == lo:
                continue
            uind, merged, seg_sizes, seg_uniques = _merge_vector_slice(
                exp_rows[lo:hi], exp_vals[lo:hi], semiring,
                sort_keys=buffers.sort_keys if use_small_keys else None,
                sorted_output=out_sorted[i], nb=nb, m=m)
            uind_per_vec[i] = uind
            uval_per_vec[i] = merged
            nonempty = seg_sizes > 0
            seg_sizes_all.extend(seg_sizes[nonempty].tolist())
            seg_uniques_all.extend(seg_uniques[nonempty].tolist())
            seg_sorted_all.extend([out_sorted[i]] * int(nonempty.sum()))
        # the (vector, bucket) segments are independent merges: schedule them
        # onto the threads like the per-vector kernel schedules its buckets
        assignment = schedule(seg_sizes_all, t, ctx.scheduling)
        for tid in range(t):
            metrics = WorkMetrics()
            for s in assignment.items_per_thread[tid]:
                size_s, uniq_s = seg_sizes_all[s], seg_uniques_all[s]
                metrics.spa_inits += size_s
                metrics.spa_updates += size_s
                metrics.additions += size_s - uniq_s
                metrics.buffer_writes += uniq_s
                if seg_sorted_all[s]:
                    metrics.sort_elements += _radix_sort_ops(uniq_s)
                metrics.cache_line_misses += estimate_scatter_misses(
                    2 * size_s, bucket_span_rows, ctx.platform.l2_kb)
            merge_phase.thread_metrics.append(metrics)
    elif total_kept:  # global composite-key sort (the pre-segmentation path)
        keys = exp_keys[:total_kept]
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_vals = exp_vals[:total_kept][order]
        run_starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_keys)) + 1))
        merged = semiring.reduceat(sorted_vals, run_starts)
        ukey = sorted_keys[run_starts]
        uvec = (ukey // m).astype(INDEX_DTYPE)
        urow = (ukey % m).astype(INDEX_DTYPE)
        first_pos = order[run_starts]  # stable sort: first occurrence of each run
        if not all(out_sorted):
            # per-vector output order: buckets ascending; inside a bucket rows
            # ascending (sorted output) or by first touch (unsorted output)
            bucket_u = bucket_of_rows(urow, nb, m)
            big = np.int64(max(m, total_kept) + 1)
            sorted_flags_arr = np.array(out_sorted, dtype=bool)
            rank = np.where(sorted_flags_arr[uvec], urow.astype(np.int64),
                            first_pos.astype(np.int64))
            comp = (uvec.astype(np.int64) * nb + bucket_u.astype(np.int64)) * big + rank
            perm = np.argsort(comp, kind="stable")
            uvec, urow, merged = uvec[perm], urow[perm], merged[perm]
        g_counts = np.bincount(uvec, minlength=k)
        g_offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(g_counts, out=g_offsets[1:])
        for i in range(k):
            lo, hi = int(g_offsets[i]), int(g_offsets[i + 1])
            # copies: urow/merged are block-wide slabs the outputs must not pin
            # (the segmented merge's per-vector arrays are already standalone)
            uind_per_vec[i] = urow[lo:hi].copy()
            uval_per_vec[i] = merged[lo:hi].copy()

    out_counts = np.array([len(uv) for uv in uind_per_vec], dtype=np.int64)
    nnz_out = int(out_counts.sum())

    if merge == "global" or not merge_phase.thread_metrics:
        # global mode (and empty blocks): the sort is one block-wide pass, so
        # its totals are split evenly — there are no independent segments
        merge_totals = WorkMetrics(
            spa_inits=total_kept,
            spa_updates=total_kept,
            additions=max(total_kept - nnz_out, 0),
            buffer_writes=nnz_out,
            sort_elements=sum(_radix_sort_ops(int(out_counts[i]))
                              for i in range(k) if out_sorted[i]),
        )
        merge_totals.cache_line_misses = estimate_scatter_misses(
            2 * total_kept, bucket_span_rows, ctx.platform.l2_kb)
        merge_phase.thread_metrics = _scaled_threads(merge_totals, t, 1.0)

    output_phase = PhaseRecord(name="output", parallel=True)
    output_phase.serial_metrics = WorkMetrics(additions=nb)
    output_phase.thread_metrics = _scaled_threads(
        WorkMetrics(output_writes=nnz_out, cache_line_misses=nnz_out), t, 1.0)

    wall_s = time.perf_counter() - t_start

    # ------------------------------------------------------------------ #
    # wrap per-vector outputs and apportion the block record
    # ------------------------------------------------------------------ #
    results: List[SpMSpVResult] = []
    block_phases = (estimate_phase, bucketing_phase, merge_phase, output_phase)
    # each vector's record carries its proportional share of the block phase
    # totals, split evenly across threads (the true per-thread split belongs
    # to the fused pass as a whole, not to any one vector)
    phase_totals = [(p.name, p.total_work(), p.barriers) for p in block_phases]
    for i in range(k):
        early_i = bitmaps is not None and bitmaps[i] is not None
        y = SparseVector(m, uind_per_vec[i], uval_per_vec[i],
                         sorted=out_sorted[i], check=False)
        y = finalize_output(
            y, semiring,
            mask=None if early_i or masks is None else masks[i],
            mask_complement=mask_complement)
        record = ExecutionRecord(
            algorithm="spmspv_bucket_block", num_threads=t,
            info={"m": m, "n": n, "nnz_A": matrix.nnz, "f": int(nnz_per_vec[i]),
                  "df": int(kept_per_vec[i]), "nnz_y": y.nnz, "fused": True,
                  "block_k": k, "block_union": u, "block_pairs": total_kept,
                  "merge": merge, "early_mask": early_i,
                  "workspace_reused": ws is not None})
        s = float(share[i])
        for name, totals, barriers in phase_totals:
            scaled_phase = PhaseRecord(name=name, parallel=True, barriers=barriers)
            scaled_phase.thread_metrics = _scaled_threads(totals, t, s)
            record.add_phase(scaled_phase)
        record.wall_time_s = wall_s / k
        results.append(SpMSpVResult(
            vector=y, record=record,
            info={"f": int(nnz_per_vec[i]), "df": int(kept_per_vec[i]),
                  "nnz_y": y.nnz, "fused": True, "merge": merge}))
    return results
