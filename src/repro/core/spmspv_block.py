"""Fused vector-block SpMSpV: the bucket algorithm over (row, vector-id) pairs.

:meth:`SpMSpVEngine.multiply_many <repro.core.engine.SpMSpVEngine.multiply_many>`
historically looped k independent :func:`~repro.core.spmspv_bucket.spmspv_bucket`
calls — k column gathers, k scatters, k merges, k rounds of interpreter
overhead.  :func:`spmspv_bucket_block` is the genuinely fused variant: the
whole :class:`~repro.formats.vector_block.SparseVectorBlock` is executed with

* **one gather** — the shared column union is pulled out of the matrix once
  (:meth:`~repro.formats.csc.CSCMatrix.gather_columns_block`) and the
  semiring multiply is broadcast across all k vectors in a single vectorized
  pass; columns selected by several vectors are never re-gathered;
* **one scatter** — the gathered entries are expanded into a flat array of
  ``(row, vector-id)`` pairs (each vector's pairs in its *original* gather
  order, replayed from the block's stored positions) living in persistent
  :class:`~repro.core.workspace.BlockBuffers`;
* **one merge** — a single stable sort of the composite key
  ``vector-id · m + row`` plays the role of the per-bucket SPA merges for
  the whole block at once.  Every ``(vector, row)`` run contains exactly the
  entries the per-vector kernel would merge, in the same order, so the
  semiring reduction is **bit-identical** to k independent ``multiply`` calls
  (including unsorted inputs and first-touch unsorted output);
* **one output pass** — unique pairs are permuted into each vector's
  per-bucket output order and sliced into k output vectors.

The four phases are priced like the per-vector bucket kernel — estimate /
bucketing / spa_merge / output, with the pair counts of Algorithm 1 applied
to (row, vector-id) pairs — and each vector's
:class:`~repro.core.result.SpMSpVResult` carries its proportional share of
the block's work, so the fused records sum to the block total (the gather
is charged once across the block: that is the fusion saving).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

import numpy as np

from .._typing import INDEX_DTYPE
from ..formats.csc import CSCMatrix
from ..formats.sparse_vector import SparseVector
from ..formats.vector_block import SparseVectorBlock
from ..machine.cache import estimate_column_gather_misses, estimate_scatter_misses
from ..parallel.context import ExecutionContext, default_context
from ..parallel.metrics import ExecutionRecord, PhaseRecord, WorkMetrics
from ..semiring import PLUS_TIMES, Semiring
from .buckets import bucket_of_rows
from .result import SpMSpVResult
from .spmspv_bucket import _radix_sort_ops
from .vector_ops import check_operands, finalize_output
from .workspace import BlockBuffers, SpMSpVWorkspace


def _scaled_threads(totals: WorkMetrics, num_threads: int, share: float
                    ) -> List[WorkMetrics]:
    """Split one vector's share of block-phase totals evenly over the threads.

    One scaled record repeated ``num_threads`` times: consumers only read, and
    the cost model prices replicated objects once.
    """
    return [totals.scale(share / num_threads)] * num_threads


def spmspv_bucket_block(matrix: CSCMatrix,
                        block: Union[SparseVectorBlock, Sequence[SparseVector]],
                        ctx: Optional[ExecutionContext] = None, *,
                        semiring: Semiring = PLUS_TIMES,
                        sorted_output: Optional[bool] = None,
                        masks: Optional[Sequence[Optional[SparseVector]]] = None,
                        mask_complement: bool = False,
                        workspace: Optional[SpMSpVWorkspace] = None
                        ) -> List[SpMSpVResult]:
    """Multiply one CSC matrix by a block of k sparse vectors in one fused pass.

    Parameters mirror :func:`~repro.core.spmspv_bucket.spmspv_bucket`, with
    ``block`` either a :class:`SparseVectorBlock` or a plain sequence of
    :class:`SparseVector` (packed on the fly) and ``masks`` an optional
    per-vector mask list.  ``sorted_output=None`` resolves per vector, exactly
    as the per-vector kernel does.  Returns one :class:`SpMSpVResult` per
    vector, indices and values exactly equal to k independent per-vector
    calls.
    """
    ctx = ctx if ctx is not None else default_context()
    if not isinstance(block, SparseVectorBlock):
        block = SparseVectorBlock.from_vectors(block)
    check_operands(matrix, block)
    if masks is not None and len(masks) != block.k:
        raise ValueError(f"got {block.k} vectors but {len(masks)} masks")
    ws = workspace if isinstance(workspace, SpMSpVWorkspace) else None
    if ws is not None:
        ws.check_rows(matrix.nrows)

    t_start = time.perf_counter()
    m, n = matrix.shape
    t = ctx.num_threads
    nb = ctx.num_buckets
    k = block.k
    u = block.union_nnz
    nnz_per_vec = block.nnz_per_vector()
    out_sorted = [sorted_output if sorted_output is not None
                  else (block.sorted_flags[i] and ctx.sorted_vectors)
                  for i in range(k)]

    # ------------------------------------------------------------------ #
    # one gather over the whole column union (+ multiply, see below)
    # ------------------------------------------------------------------ #
    from ..baselines.common import gather_cost_chunks, priced_gather_phase

    col_weights, chunks = gather_cost_chunks(matrix, block.indices, t)

    # pair counts: gathered entry e fans out to one (row, vector-id) pair per
    # vector that stores entry src_g[e] of the union
    member_counts = block.member.sum(axis=1).astype(INDEX_DTYPE) if u else \
        np.empty(0, dtype=INDEX_DTYPE)
    pair_weights = (col_weights * member_counts) if u else col_weights
    df_per_vec = np.array(
        [int(col_weights[pos].sum()) if len(pos) else 0 for pos in block.positions],
        dtype=np.int64)
    total_pairs = int(df_per_vec.sum())
    share = (df_per_vec / total_pairs) if total_pairs else np.full(k, 1.0 / max(k, 1))
    total_g = int(col_weights.sum()) if u else 0

    # The multiply is broadcast across the (union gather) x (k vectors) slab
    # only while that slab stays close to the true pair count — dense,
    # heavily-shared blocks (PageRank deltas, overlapping BFS frontiers).  A
    # weakly-shared block would waste k/sharing times the multiplies (and a
    # (total, k) temporary) on products no vector needs, so it computes each
    # vector's df_i products directly during the expansion instead; both
    # paths produce identical scalars.
    broadcast = total_pairs > 0 and total_g * k <= 2 * total_pairs
    rows_g, vals_g, _src_g, scaled = matrix.gather_columns_block(
        block.indices, block.values if broadcast else None,
        multiply=semiring.multiply)
    out_dtype = np.result_type(matrix.dtype, block.dtype)

    # Phase 0: ESTIMATE-BUCKETS over the union (priced via the shared helpers)
    estimate_phase = priced_gather_phase(col_weights, chunks, name="estimate")
    for tm in estimate_phase.thread_metrics:
        tm.multiplications = 0   # the estimate pass only counts, it scales nothing
        tm.buffer_writes = nb    # per-(thread, bucket) counters

    # ------------------------------------------------------------------ #
    # one scatter: expand into flat (row, vector-id, value) pairs
    # ------------------------------------------------------------------ #
    if ws is not None:
        buffers = ws.acquire_block(max(total_pairs, 1), dtype=out_dtype)
    else:
        buffers = BlockBuffers(max(total_pairs, 1), dtype=out_dtype)
    exp_rows = buffers.rows[:total_pairs]
    exp_keys = buffers.keys[:total_pairs]
    exp_vals = buffers.values[:total_pairs]

    # flat segment table of the union gather: column p of the union occupies
    # rows_g[starts_u[p] : starts_u[p] + col_weights[p]]
    starts_u = np.zeros(u + 1, dtype=np.int64)
    if u:
        np.cumsum(col_weights, out=starts_u[1:])
    seg_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(df_per_vec, out=seg_offsets[1:])
    for i in range(k):
        pos = block.positions[i]
        lo, hi = int(seg_offsets[i]), int(seg_offsets[i + 1])
        if hi == lo:
            continue
        lengths = col_weights[pos]
        # replay vector i's own gather order from the compact union gather
        offs = np.zeros(len(pos), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offs[1:])
        gpos = (np.repeat(starts_u[pos], lengths)
                + np.arange(hi - lo, dtype=np.int64) - np.repeat(offs, lengths))
        np.take(rows_g, gpos, out=exp_rows[lo:hi])
        if broadcast:
            exp_vals[lo:hi] = scaled[gpos, i]
        else:
            # same scalars as the broadcast slab (and as the per-vector
            # kernel): A values in this vector's gather order times its own
            # x value repeated over each column's entries
            exp_vals[lo:hi] = semiring.multiply(
                vals_g[gpos], np.repeat(block.values[pos, i], lengths))
        np.add(exp_rows[lo:hi], np.int64(i) * m, out=exp_keys[lo:hi])

    bucketing_phase = PhaseRecord(name="bucketing", parallel=True)
    pairs_per_chunk = [int(pair_weights[chunk].sum()) if len(chunk) else 0
                      for chunk in chunks]
    entries_per_chunk = [int(col_weights[chunk].sum()) if len(chunk) else 0
                        for chunk in chunks]
    for tid in range(t):
        metrics = WorkMetrics(
            vector_reads=len(chunks[tid]),
            colptr_reads=len(chunks[tid]),
            matrix_nnz_reads=entries_per_chunk[tid],
            multiplications=pairs_per_chunk[tid],
            bucket_writes=pairs_per_chunk[tid],
        )
        if ctx.private_buffer_size > 0:
            metrics.buffer_writes += pairs_per_chunk[tid]
        metrics.cache_line_misses = estimate_column_gather_misses(
            len(chunks[tid]), entries_per_chunk[tid], n, input_sorted=True)
        bucketing_phase.thread_metrics.append(metrics)

    # ------------------------------------------------------------------ #
    # one merge: composite-key sort + segmented semiring reduction
    # ------------------------------------------------------------------ #
    if total_pairs:
        order = np.argsort(exp_keys, kind="stable")
        sorted_keys = exp_keys[order]
        sorted_vals = exp_vals[order]
        run_starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_keys)) + 1))
        merged = semiring.reduceat(sorted_vals, run_starts)
        ukey = sorted_keys[run_starts]
        uvec = (ukey // m).astype(INDEX_DTYPE)
        urow = (ukey % m).astype(INDEX_DTYPE)
        first_pos = order[run_starts]  # stable sort: first occurrence of each run
        if not all(out_sorted):
            # per-vector output order: buckets ascending; inside a bucket rows
            # ascending (sorted output) or by first touch (unsorted output)
            bucket_u = bucket_of_rows(urow, nb, m)
            big = np.int64(max(m, total_pairs) + 1)
            sorted_flags_arr = np.array(out_sorted, dtype=bool)
            rank = np.where(sorted_flags_arr[uvec], urow.astype(np.int64),
                            first_pos.astype(np.int64))
            comp = (uvec.astype(np.int64) * nb + bucket_u.astype(np.int64)) * big + rank
            perm = np.argsort(comp, kind="stable")
            urow, merged = urow[perm], merged[perm]
        out_counts = np.bincount(uvec, minlength=k)
    else:
        urow = np.empty(0, dtype=INDEX_DTYPE)
        merged = np.empty(0, dtype=out_dtype)
        out_counts = np.zeros(k, dtype=np.int64)
    out_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_offsets[1:])
    nnz_out = int(out_offsets[-1])

    merge_totals = WorkMetrics(
        spa_inits=total_pairs,
        spa_updates=total_pairs,
        additions=max(total_pairs - nnz_out, 0),
        buffer_writes=nnz_out,
        sort_elements=sum(_radix_sort_ops(int(out_counts[i]))
                          for i in range(k) if out_sorted[i]),
    )
    # the merge working set is one bucket's row span per (bucket, vector) slice
    bucket_span_rows = max(1, -(-m // nb))
    merge_totals.cache_line_misses = estimate_scatter_misses(
        2 * total_pairs, bucket_span_rows, ctx.platform.l2_kb)
    merge_phase = PhaseRecord(name="spa_merge", parallel=True)
    merge_phase.thread_metrics = _scaled_threads(merge_totals, t, 1.0)

    output_phase = PhaseRecord(name="output", parallel=True)
    output_phase.serial_metrics = WorkMetrics(additions=nb)
    output_phase.thread_metrics = _scaled_threads(
        WorkMetrics(output_writes=nnz_out, cache_line_misses=nnz_out), t, 1.0)

    wall_s = time.perf_counter() - t_start

    # ------------------------------------------------------------------ #
    # slice per-vector outputs and apportion the block record
    # ------------------------------------------------------------------ #
    results: List[SpMSpVResult] = []
    block_phases = (estimate_phase, bucketing_phase, merge_phase, output_phase)
    # each vector's record carries its proportional share of the block phase
    # totals, split evenly across threads (the true per-thread split belongs
    # to the fused pass as a whole, not to any one vector)
    phase_totals = [(p.name, p.total_work(), p.barriers) for p in block_phases]
    for i in range(k):
        lo, hi = int(out_offsets[i]), int(out_offsets[i + 1])
        y = SparseVector(m, urow[lo:hi].copy(), merged[lo:hi].copy(),
                         sorted=out_sorted[i], check=False)
        y = finalize_output(y, semiring,
                            mask=masks[i] if masks is not None else None,
                            mask_complement=mask_complement)
        record = ExecutionRecord(
            algorithm="spmspv_bucket_block", num_threads=t,
            info={"m": m, "n": n, "nnz_A": matrix.nnz, "f": int(nnz_per_vec[i]),
                  "df": int(df_per_vec[i]), "nnz_y": y.nnz, "fused": True,
                  "block_k": k, "block_union": u, "block_pairs": total_pairs,
                  "workspace_reused": ws is not None})
        s = float(share[i])
        for name, totals, barriers in phase_totals:
            scaled_phase = PhaseRecord(name=name, parallel=True, barriers=barriers)
            scaled_phase.thread_metrics = _scaled_threads(totals, t, s)
            record.add_phase(scaled_phase)
        record.wall_time_s = wall_s / k
        results.append(SpMSpVResult(
            vector=y, record=record,
            info={"f": int(nnz_per_vec[i]), "df": int(df_per_vec[i]),
                  "nnz_y": y.nnz, "fused": True}))
    return results
