"""Algorithm registry and the top-level :func:`spmspv` convenience entry point.

Every SpMSpV implementation in the package shares the signature

``algo(matrix, x, ctx=None, *, semiring=..., sorted_output=None, mask=None,
mask_complement=False, workspace=None) -> SpMSpVResult``

so graph algorithms and benchmarks can switch implementations by name.

:func:`spmspv` itself is a thin shim over the unified execution engine
(:class:`repro.core.engine.SpMSpVEngine`): every call is served by a cached
per-``(matrix, context)`` engine, which reuses one persistent workspace
across repeated calls on the same matrix and implements the "auto" policy
sketched in the paper's future work (§V) — switch to a matrix-driven
algorithm once the input vector becomes relatively dense, refined online
from observed per-algorithm cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import NotSupportedError
from ..formats.csc import CSCMatrix
from ..formats.sparse_vector import SparseVector
from ..parallel.context import ExecutionContext
from ..semiring import PLUS_TIMES, Semiring
from .result import SpMSpVResult
from .spmspv_bucket import spmspv_bucket

AlgorithmFn = Callable[..., SpMSpVResult]

_REGISTRY: Dict[str, AlgorithmFn] = {}

#: fraction of columns that must be populated in x before "auto" prefers the
#: matrix-driven algorithm (the paper observes matrix-driven algorithms become
#: competitive only for relatively dense input vectors).
AUTO_DENSITY_SWITCH = 0.10


def register_algorithm(name: str, fn: AlgorithmFn, *, overwrite: bool = False) -> None:
    """Register an SpMSpV implementation under a short name."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = fn


def available_algorithms() -> list:
    """Names of all registered SpMSpV implementations."""
    return sorted(_REGISTRY)


def get_algorithm(name: str) -> AlgorithmFn:
    """Look up an implementation by name ('bucket', 'combblas_spa', ...)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise NotSupportedError(
            f"unknown SpMSpV algorithm {name!r}; available: {available_algorithms()}"
        ) from None


def _ensure_registered() -> None:
    """Populate the registry lazily (avoids import cycles with repro.baselines)."""
    if _REGISTRY:
        return
    from ..baselines.combblas_heap import spmspv_combblas_heap
    from ..baselines.combblas_spa import spmspv_combblas_spa
    from ..baselines.graphmat import spmspv_graphmat
    from ..baselines.spmspv_sort import spmspv_sort

    _REGISTRY.update({
        "bucket": spmspv_bucket,
        "combblas_spa": spmspv_combblas_spa,
        "combblas_heap": spmspv_combblas_heap,
        "graphmat": spmspv_graphmat,
        "sort": spmspv_sort,
    })


def spmspv(matrix: CSCMatrix, x: SparseVector,
           ctx: Optional[ExecutionContext] = None, *,
           algorithm: str = "bucket",
           semiring: Semiring = PLUS_TIMES,
           sorted_output: Optional[bool] = None,
           mask: Optional[SparseVector] = None,
           mask_complement: bool = False,
           **kwargs) -> SpMSpVResult:
    """Multiply a sparse matrix by a sparse vector: ``y <- A x`` over a semiring.

    ``algorithm`` selects the implementation:

    * ``'bucket'`` — the paper's SpMSpV-bucket algorithm (default),
    * ``'combblas_spa'`` / ``'combblas_heap'`` / ``'graphmat'`` / ``'sort'`` —
      the baselines of Table I,
    * ``'auto'`` — vector-driven bucket algorithm for sparse inputs, switching
      to the matrix-driven algorithm when ``nnz(x)/n`` exceeds
      ``AUTO_DENSITY_SWITCH`` (the §V future-work heuristic), refined online
      by the engine's per-algorithm cost models.  The refinement makes the
      choice depend (deterministically) on the prior call history for this
      matrix; cold-start calls follow the pure density rule.

    Every call executes through the cached :class:`~repro.core.engine.SpMSpVEngine`
    for ``(matrix, ctx)``, so repeated calls on the same matrix reuse one
    persistent workspace (pass ``workspace=`` explicitly to override it).
    """
    from .engine import engine_for  # late: engine imports this module

    _ensure_registered()
    engine = engine_for(matrix, ctx)
    return engine.multiply(x, algorithm=algorithm, semiring=semiring,
                           sorted_output=sorted_output, mask=mask,
                           mask_complement=mask_complement, **kwargs)
