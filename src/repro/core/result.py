"""Result object returned by every SpMSpV implementation in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..formats.sparse_vector import SparseVector
from ..parallel.metrics import ExecutionRecord


@dataclass
class SpMSpVResult:
    """The output vector of one SpMSpV plus the full execution record.

    ``vector`` is the mathematical result ``y = A·x`` (over the requested
    semiring, after masking).  ``record`` carries the per-phase, per-thread
    work metrics used by the machine model and the work-efficiency analysis.
    ``info`` holds free-form problem statistics (``f``, ``d·f``, ``nnz(y)``,
    ...) that the benchmark harness reports alongside timings.
    """

    vector: SparseVector
    record: ExecutionRecord
    info: Dict[str, float] = field(default_factory=dict)

    def detach(self) -> "SpMSpVResult":
        """Switch to summary-only mode for long-lived retention.

        Collapses the record's per-thread phase detail into aggregate totals
        (the per-phase/per-thread split — and with it the critical-path
        timing — is gone, so price the record *before* detaching if you need
        simulated times).  The output vector and the info dict are kept.
        Returns ``self`` for chaining.
        """
        self.record = self.record.compact()
        return self

    @property
    def nnz(self) -> int:
        """Number of nonzeros in the output vector."""
        return self.vector.nnz

    @property
    def algorithm(self) -> str:
        return self.record.algorithm

    def simulated_time_ms(self, platform=None, model=None) -> float:
        """Price this execution on a platform (defaults to the Edison preset)."""
        from ..machine.cost_model import CostModel, cost_model_for
        from ..machine.platforms import EDISON

        if model is None:
            model = cost_model_for(platform if platform is not None else EDISON)
        return model.record_time_ms(self.record)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVResult(algorithm={self.algorithm!r}, nnz(y)={self.nnz}, "
                f"threads={self.record.num_threads})")


class DetachableResult:
    """Mixin for algorithm results that carry their :class:`SpMSpVEngine`.

    Every iterative algorithm returns a result holding the engine that ran
    it, for reporting — which pins the engine's O(nrows) workspace buffers
    (SPA, dense scratch, block buffers) for as long as the result lives.
    Workloads that retain many results over huge graphs call
    :meth:`detach`: the engine is replaced by its :meth:`summary()
    <repro.core.engine.SpMSpVEngine.summary>` dict (kept in
    ``engine_summary``), and any per-call execution records are compacted to
    their totals.  The mathematical outcome (levels, scores, ...) is
    untouched.  Returns ``self`` for chaining.
    """

    #: summary of the detached engine (None while the engine is attached)
    engine_summary = None

    def detach(self):
        engine = getattr(self, "engine", None)
        if engine is not None:
            self.engine_summary = engine.summary()
            self.engine = None
        records = getattr(self, "records", None)
        if records is not None:
            records[:] = [r.compact() for r in records]
        return self
