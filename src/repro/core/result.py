"""Result object returned by every SpMSpV implementation in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..formats.sparse_vector import SparseVector
from ..parallel.metrics import ExecutionRecord


@dataclass
class SpMSpVResult:
    """The output vector of one SpMSpV plus the full execution record.

    ``vector`` is the mathematical result ``y = A·x`` (over the requested
    semiring, after masking).  ``record`` carries the per-phase, per-thread
    work metrics used by the machine model and the work-efficiency analysis.
    ``info`` holds free-form problem statistics (``f``, ``d·f``, ``nnz(y)``,
    ...) that the benchmark harness reports alongside timings.
    """

    vector: SparseVector
    record: ExecutionRecord
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def nnz(self) -> int:
        """Number of nonzeros in the output vector."""
        return self.vector.nnz

    @property
    def algorithm(self) -> str:
        return self.record.algorithm

    def simulated_time_ms(self, platform=None, model=None) -> float:
        """Price this execution on a platform (defaults to the Edison preset)."""
        from ..machine.cost_model import CostModel, cost_model_for
        from ..machine.platforms import EDISON

        if model is None:
            model = cost_model_for(platform if platform is not None else EDISON)
        return model.record_time_ms(self.record)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SpMSpVResult(algorithm={self.algorithm!r}, nnz(y)={self.nnz}, "
                f"threads={self.record.num_threads})")
