"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(scaled-down inputs, simulated platform timings — see DESIGN.md §4) and
additionally micro-benchmarks the real NumPy kernels with pytest-benchmark.
The regenerated rows/series are printed and written to
``benchmarks/results/<experiment>.txt`` so they survive output capturing.
"""

from __future__ import annotations

import functools
from pathlib import Path

import numpy as np

from repro.formats import SparseVector
from repro.graphs import Graph, grid_2d, rmat

RESULTS_DIR = Path(__file__).parent / "results"

#: thread counts used for the Edison-style scaling experiments (x-axis of Figs. 2, 4, 6)
EDISON_THREADS = [1, 2, 4, 8, 16, 24]
#: thread counts used for the KNL-style scaling experiments (x-axis of Fig. 5)
KNL_THREADS = [1, 4, 16, 64]

ALGORITHMS = ["bucket", "combblas_spa", "combblas_heap", "graphmat"]


def emit(experiment: str, text: str) -> str:
    """Print a report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(text)
    return text


@functools.lru_cache(maxsize=None)
def scale_free_graph(scale: int = 17, edge_factor: int = 16) -> Graph:
    """The ljournal-2008 stand-in used by Figs. 2, 3 and 6 (scaled down ~40x).

    131K vertices / ~3.7M stored entries: large enough that the O(m) SPA
    initialization of CombBLAS-SPA and the O(nzc) column scan of GraphMat are
    clearly visible against the bucket algorithm's O(d·f) work, which is what
    the paper's Fig. 2/3/6 measure.
    """
    return Graph(rmat(scale=scale, edge_factor=edge_factor, seed=11), name="ljournal-like")


@functools.lru_cache(maxsize=None)
def high_diameter_graph(side: int = 150) -> Graph:
    """The hugetric-00020 stand-in (triangulated 2-D mesh)."""
    return Graph(grid_2d(side, side, diagonal=True, seed=18), name="hugetric-like")


def random_frontier(graph: Graph, nnz: int, seed: int = 0) -> SparseVector:
    """A random sparse vector with the requested number of nonzeros."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    nnz = min(nnz, n)
    idx = np.sort(rng.choice(n, size=nnz, replace=False))
    return SparseVector(n, idx, rng.random(nnz) + 0.1)


def good_source(graph: Graph) -> int:
    """A well-connected BFS source (the paper always reuses the same source)."""
    return int(np.argmax(graph.out_degrees()))
