"""Streaming-update perf harness: delta overlay vs. full rebuild.

The dynamic-graph layer's reason to exist is that serving an update batch as
a delta overlay (:meth:`~repro.core.engine.SpMSpVEngine.apply_updates` — log
the edges, patch-correct the next multiply) is much cheaper than what a
static system must do: rebuild the CSC matrix and a fresh engine, then
multiply.  Two phases measure that claim on the RMAT suite graphs:

* ``overlay`` — per update-batch fraction (0.1% and 1% of the graph's
  nonzeros), time ``apply_updates + multiply`` on a warm delta engine
  against ``rebuild matrix + new engine + multiply``.  Both strategies start
  from the same pristine base every round and produce bit-identical
  results.  **Gate** (machine-independent, always evaluated): the overlay
  is >= 2x the rebuild path at every batch size <= 1% nnz.
* ``sustained`` — an update-rate x query-rate sweep on a *sharded* engine
  with the default compaction policy: each tick applies ``u`` updates and
  serves ``q`` multiplies, letting deltas accumulate until per-strip
  compaction fires.  Reported (not gated): ticks/s, compactions triggered,
  and the delta backlog left at the end — the numbers that size a serving
  deployment.

Results are printed as a table and written to ``BENCH_streaming.json``.
Exit status is the regression gate used by CI:

    python benchmarks/bench_streaming.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ShardedEngine, SpMSpVEngine
from repro.formats import DeltaLog, SparseVector, apply_delta
from repro.graphs import build_problem
from repro.parallel import default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 13), ("webgoogle-like", 13)]

SHARDS = 4
#: update batch sizes, as fractions of the base graph's nnz
BATCH_FRACTIONS = [0.001, 0.01]
#: the overlay must beat the full-rebuild path by this factor at every
#: batch fraction <= 1% nnz (machine-independent: both strategies run
#: in-process on the same core)
GATE_OVERLAY_SPEEDUP = 2.0
#: sustained-phase shape: (updates per tick, queries per tick) pairs
SUSTAINED_MIX = [(8, 32), (64, 8), (256, 2)]
SUSTAINED_TICKS = 30


def update_batch(matrix, fraction: float, seed: int):
    """A mixed insert/reweight batch sized to ``fraction`` of base nnz."""
    rng = np.random.default_rng(seed)
    count = max(8, int(matrix.nnz * fraction))
    rows = rng.integers(0, matrix.nrows, size=count)
    cols = rng.integers(0, matrix.ncols, size=count)
    vals = rng.random(count) + 0.5
    return rows, cols, vals


def dense_frontier(n: int, divisor: int, seed: int) -> SparseVector:
    rng = np.random.default_rng(seed)
    nnz = max(64, n // divisor)
    idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
    return SparseVector(n, idx, rng.random(len(idx)) + 0.1)


def time_best_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-N for several competitors, rounds interleaved (stable ratios)."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], (time.perf_counter() - t0) * 1e3)
    return best


def bench_overlay(matrix, ctx, fraction: float, rounds: int) -> dict:
    """apply_updates + multiply on a warm delta engine vs. full rebuild."""
    rows, cols, vals = update_batch(matrix, fraction, seed=61)
    x = dense_frontier(matrix.ncols, 2, seed=31)

    overlay_engine = SpMSpVEngine(matrix, ctx, algorithm="bucket")
    overlay_engine.compact_fraction = float("inf")   # measure the pure overlay
    overlay_engine.multiply(x)                       # warm the workspace

    def overlay():
        # every round starts from the pristine base: clear the previous
        # round's delta, then pay the real per-batch serving cost
        overlay_engine.delta.clear()
        overlay_engine.apply_updates(rows, cols, vals)
        return overlay_engine.multiply(x)

    def rebuild():
        # what a static system pays for the same batch: rebuild the CSC
        # matrix, build a fresh engine (cold workspace), then multiply
        delta = DeltaLog(matrix.shape)
        delta.set_edges(rows, cols, vals)
        rebuilt = apply_delta(matrix, delta)
        return SpMSpVEngine(rebuilt, ctx, algorithm="bucket").multiply(x)

    # the two strategies must agree before their timings mean anything
    got, want = overlay().vector, rebuild().vector
    go, wo = np.argsort(got.indices, kind="stable"), np.argsort(want.indices,
                                                                kind="stable")
    if not (np.array_equal(got.indices[go], want.indices[wo])
            and np.array_equal(got.values[go], want.values[wo])):
        raise AssertionError(
            f"overlay result diverged from rebuild at fraction {fraction}")

    best = time_best_interleaved({"overlay": overlay, "rebuild": rebuild},
                                 rounds)
    best["batch_edges"] = len(rows)
    return best


def bench_sustained(matrix, ctx, updates_per_tick: int, queries_per_tick: int,
                    ticks: int) -> dict:
    """Sustained update x query mix on a sharded engine, default compaction."""
    rng = np.random.default_rng(71)
    engine = ShardedEngine(matrix, SHARDS, ctx, algorithm="bucket")
    xs = [dense_frontier(matrix.ncols, 4, seed=81 + i) for i in range(4)]
    engine.multiply(xs[0])                           # warm the workspaces
    t0 = time.perf_counter()
    for tick in range(ticks):
        rows = rng.integers(0, matrix.nrows, size=updates_per_tick)
        cols = rng.integers(0, matrix.ncols, size=updates_per_tick)
        engine.apply_updates(rows, cols, rng.random(updates_per_tick) + 0.5)
        for q in range(queries_per_tick):
            engine.multiply(xs[(tick + q) % len(xs)])
    elapsed = time.perf_counter() - t0
    stats = engine.delta_stats()
    return {
        "elapsed_ms": elapsed * 1e3,
        "ticks_per_s": ticks / elapsed if elapsed > 0 else float("inf"),
        "compactions": stats["compactions"],
        "delta_backlog_entries": stats["entries"],
    }


def run(quick: bool, threads: int, rounds: int,
        require_cores: int = 0) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ctx = default_context(num_threads=threads, backend="emulated")
    cores = os.cpu_count() or 1
    report = {
        "benchmark": "streaming",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "shards": SHARDS,
        "cpu_cores": cores,
        "require_cores": require_cores or None,
        "gate": {"overlay_min_speedup": GATE_OVERLAY_SPEEDUP,
                 "batch_fractions": BATCH_FRACTIONS},
        "graphs": [],
        "results": [],
        "sustained": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        for fraction in BATCH_FRACTIONS:
            res = bench_overlay(matrix, ctx, fraction, rounds)
            report["results"].append({
                "graph": name, "workload": "overlay",
                "batch_fraction": fraction,
                "batch_edges": res["batch_edges"],
                "overlay_ms": round(res["overlay"], 4),
                "rebuild_ms": round(res["rebuild"], 4),
                "speedup": round(res["rebuild"] / res["overlay"], 4)
                if res["overlay"] > 0 else float("inf"),
            })
        for updates, queries in SUSTAINED_MIX:
            sus = bench_sustained(matrix, ctx, updates, queries,
                                  SUSTAINED_TICKS)
            report["sustained"].append({
                "graph": name, "updates_per_tick": updates,
                "queries_per_tick": queries, "ticks": SUSTAINED_TICKS,
                "elapsed_ms": round(sus["elapsed_ms"], 2),
                "ticks_per_s": round(sus["ticks_per_s"], 2),
                "compactions": sus["compactions"],
                "delta_backlog_entries": sus["delta_backlog_entries"],
            })

    gates = {}
    speedups = [r["speedup"] for r in report["results"]
                if r["workload"] == "overlay"]
    gates["overlay"] = {
        "min_speedup": min(speedups) if speedups else None,
        "floor": GATE_OVERLAY_SPEEDUP,
        # both competitors run in-process on one core: no skip path
        "passed": bool(speedups and min(speedups) >= GATE_OVERLAY_SPEEDUP),
    }
    if require_cores and cores < require_cores:
        gates["cores"] = {
            "passed": False,
            "failed_reason": (f"--require-cores {require_cores} but machine "
                              f"has {cores}"),
        }
    evaluated = [g["passed"] for g in gates.values() if g["passed"] is not None]
    report["summary"] = {
        "gates": gates,
        "check_passed": all(evaluated) if evaluated else None,
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'batch':>8} {'edges':>7} {'overlay ms':>11} " \
             f"{'rebuild ms':>11} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        print(f"{r['graph']:<16} {r['batch_fraction']:>7.2%} "
              f"{r['batch_edges']:>7} {r['overlay_ms']:>11.3f} "
              f"{r['rebuild_ms']:>11.3f} {r['speedup']:>7.2f}x")
    print()
    header = f"{'graph':<16} {'upd/tick':>8} {'qry/tick':>8} " \
             f"{'ticks/s':>9} {'compactions':>12} {'backlog':>8}"
    print(header)
    print("-" * len(header))
    for s in report["sustained"]:
        print(f"{s['graph']:<16} {s['updates_per_tick']:>8} "
              f"{s['queries_per_tick']:>8} {s['ticks_per_s']:>9.1f} "
              f"{s['compactions']:>12} {s['delta_backlog_entries']:>8}")
    gate = report["summary"]["gates"]["overlay"]
    print(f"\nmin overlay speedup: {gate['min_speedup']}x "
          f"(floor {gate['floor']}x, passed: {gate['passed']})")
    cores_gate = report["summary"]["gates"].get("cores")
    if cores_gate:
        print(f"core check failed: {cores_gate['failed_reason']}")
    print(f"regression check passed: {report['summary']['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: the RMAT suite at scale 13")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the overlay gate passed "
                             f"(overlay >= {GATE_OVERLAY_SPEEDUP}x rebuild "
                             "at every batch <= 1% nnz; machine-independent)")
    parser.add_argument("--require-cores", type=int, default=0, metavar="N",
                        help="hard-fail when the machine has fewer than N "
                             "cores — for runners that are supposed to "
                             "have them")
    parser.add_argument("--threads", type=int, default=1,
                        help="thread budget of the shared context (the "
                             "overlay ratio is single-core by design)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 5 quick / 7 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_streaming.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (5 if args.quick else 7)
    report = run(args.quick, args.threads, rounds,
                 require_cores=args.require_cores)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and report["summary"]["check_passed"] is False:
        print(f"FAIL: streaming regression gate not met (delta-overlay "
              f"apply+multiply >= {GATE_OVERLAY_SPEEDUP}x the full "
              f"rebuild+multiply path at update batches <= 1% of nnz)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
