"""Serving-throughput harness: coalesced vs. uncoalesced query serving.

Drives N closed-loop clients (each waits for its response before sending
the next request) against two :class:`~repro.serve.QueryServer`
configurations over the RMAT suite graphs:

* **uncoalesced** — ``max_batch=1``: every request is its own engine call,
  the one-query-one-kernel baseline;
* **coalesced** — ``max_batch=16`` within a ~2 ms window: concurrent
  same-key requests execute as one fused
  :class:`~repro.formats.vector_block.SparseVectorBlock` batch (one union
  gather, one scatter, one segmented merge for the whole batch — the
  paper's block-kernel economics turned into serving throughput).

The gate is **coalesced throughput >= 1.5x uncoalesced at >= 16 concurrent
clients**.  Wall-clock throughput ratios need hardware: below
``GATE_MIN_CORES`` cores the numbers are still measured and reported, but
the gate records as skipped (``"passed": null``) — unless
``--require-cores N`` says the runner was *supposed* to have cores, in
which case a shortfall is a hard failure.  A second, machine-independent
gate always evaluates: a sample of coalesced responses must be
bit-identical to solo ``SpMSpVEngine.multiply`` calls.

Results are printed and written to ``BENCH_serving.json``; exit status is
the CI regression gate:

    python benchmarks/bench_serving.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import SpMSpVEngine
from repro.graphs import build_problem
from repro.parallel import default_context
from repro.serve import MultiplyQuery, QueryServer, random_query

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 13), ("webgoogle-like", 13)]

#: the gate's concurrency floor: coalescing wins must show at real fan-in
GATE_MIN_CLIENTS = 16
#: coalesced serving throughput vs. the max_batch=1 baseline
GATE_COALESCE_SPEEDUP = 1.5
#: wall-clock throughput ratios need real cores (client threads + pump
#: contend for the GIL on fewer); below this the speedup gate is skipped
GATE_MIN_CORES = 4
#: responses sampled per run for the bit-identity audit
IDENTITY_SAMPLE = 32

MAX_BATCH = 16
MAX_WAIT_S = 0.002


def client_queries(graphs, clients: int, per_client: int, seed: int):
    """Deterministic per-client query streams (multiply-only, mixed nnz)."""
    return [[random_query(np.random.default_rng(seed + 1000 * c + j), graphs,
                          ("multiply",), nnz=(16, 128))
             for j in range(per_client)]
            for c in range(clients)]


def run_closed_loop_collect(server, streams, result_timeout_s=120.0):
    """Closed-loop clients that keep their responses (for the identity
    audit); returns (ok, errors, elapsed_s, responses-by-client)."""
    ok = [0] * len(streams)
    errors = [0] * len(streams)
    responses = [[None] * len(s) for s in streams]

    def client(i):
        for j, query in enumerate(streams[i]):
            try:
                future = server.submit(query)
                responses[i][j] = future.result(timeout=result_timeout_s)
                ok[i] += 1
            except Exception:
                errors[i] += 1

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(len(streams))]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return sum(ok), sum(errors), elapsed, responses


def verify_identity(graphs, streams, responses, sample: int, seed: int) -> dict:
    """Bit-compare a deterministic sample of responses to solo engine calls."""
    ctx = default_context()
    engines = {name: SpMSpVEngine(matrix, ctx, algorithm="bucket")
               for name, matrix in graphs.items()}
    flat = [(streams[i][j], responses[i][j])
            for i in range(len(streams)) for j in range(len(streams[i]))
            if responses[i][j] is not None]
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(flat), size=min(sample, len(flat)), replace=False)
    mismatches = 0
    for p in picks.tolist():
        query, served = flat[p]
        ref = engines[query.graph].multiply(query.x)
        if not (np.array_equal(served.vector.indices, ref.vector.indices)
                and np.array_equal(served.vector.values, ref.vector.values)):
            mismatches += 1
    return {"sampled": int(len(picks)), "mismatches": mismatches,
            "bit_identical": mismatches == 0}


def bench_graph(name, scale, clients, per_client, threads) -> dict:
    matrix = build_problem(name, scale).matrix
    graphs = {name: matrix}
    ctx = default_context(num_threads=threads)
    row = {"graph": name, "scale": scale, "n": matrix.ncols,
           "nnz": matrix.nnz, "clients": clients,
           "requests": clients * per_client}

    configs = {
        "uncoalesced": dict(max_batch=1, max_wait_s=0.0),
        "coalesced": dict(max_batch=MAX_BATCH, max_wait_s=MAX_WAIT_S),
    }
    identity = None
    for label, knobs in configs.items():
        streams = client_queries(graphs, clients, per_client, seed=7)
        server = QueryServer(graphs, ctx, max_queue=4 * clients * MAX_BATCH,
                             overload="block", **knobs)
        try:
            # warm the engine workspace off the clock
            server.submit(streams[0][0]).result(timeout=120.0)
            ok, errors, elapsed, responses = run_closed_loop_collect(
                server, streams)
            stats = server.serve_stats()
        finally:
            server.close()
        row[label] = {
            "ok": ok, "errors": errors, "elapsed_s": round(elapsed, 4),
            "throughput_rps": round(ok / elapsed, 2) if elapsed > 0 else None,
            "batches": stats["batches"],
            "coalesce_ratio": round(stats["coalesce_ratio"], 3),
            "batch_size_histogram": stats["batch_size_histogram"],
            "latency_p50_s": stats["latency_p50_s"],
            "latency_p99_s": stats["latency_p99_s"],
        }
        if label == "coalesced":
            identity = verify_identity(graphs, streams, responses,
                                       IDENTITY_SAMPLE, seed=13)
    un, co = row["uncoalesced"], row["coalesced"]
    row["speedup"] = (round(co["throughput_rps"] / un["throughput_rps"], 3)
                      if un["throughput_rps"] else None)
    row["identity"] = identity
    return row


def run(quick: bool, threads: int, clients: int, per_client: int,
        require_cores: int = 0) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    cores = os.cpu_count() or 1
    report = {
        "benchmark": "serving",
        "quick": quick,
        "cpu_cores": cores,
        "require_cores": require_cores or None,
        "clients": clients,
        "requests_per_client": per_client,
        "config": {"max_batch": MAX_BATCH, "max_wait_s": MAX_WAIT_S,
                   "block_mode": "fused", "algorithm": "bucket"},
        "gate": {"coalesce_min_speedup": GATE_COALESCE_SPEEDUP,
                 "min_clients": GATE_MIN_CLIENTS,
                 "min_cores": GATE_MIN_CORES},
        "results": [],
    }
    for name, scale in graphs:
        report["results"].append(
            bench_graph(name, scale, clients, per_client, threads))

    gates = {}
    speedups = [r["speedup"] for r in report["results"]
                if r["speedup"] is not None]
    gates["coalesce_throughput"] = {
        "min_speedup": min(speedups) if speedups else None,
        "floor": GATE_COALESCE_SPEEDUP,
        "clients": clients,
    }
    if clients < GATE_MIN_CLIENTS:
        gates["coalesce_throughput"]["passed"] = None
        gates["coalesce_throughput"]["skipped"] = (
            f"{clients} clients < the gate's {GATE_MIN_CLIENTS}-client floor")
    elif cores >= GATE_MIN_CORES:
        gates["coalesce_throughput"]["passed"] = bool(
            speedups and min(speedups) >= GATE_COALESCE_SPEEDUP)
    elif require_cores and cores < require_cores:
        gates["coalesce_throughput"]["passed"] = False
        gates["coalesce_throughput"]["failed_reason"] = (
            f"--require-cores {require_cores} but machine has {cores}")
    else:
        gates["coalesce_throughput"]["passed"] = None
        gates["coalesce_throughput"]["skipped"] = (
            f"machine has {cores} core(s); client threads + the serving pump "
            f"need >= {GATE_MIN_CORES} for a wall-clock throughput ratio")
    identities = [r["identity"]["bit_identical"] for r in report["results"]]
    gates["bit_identity"] = {
        "sampled": sum(r["identity"]["sampled"] for r in report["results"]),
        "passed": all(identities),  # machine-independent: always evaluated
    }
    evaluated = [g["passed"] for g in gates.values() if g["passed"] is not None]
    report["summary"] = {
        "gates": gates,
        "check_passed": all(evaluated) if evaluated else None,
    }
    return report


def print_table(report: dict) -> None:
    header = (f"{'graph':<16} {'clients':>7} {'uncoal rps':>11} "
              f"{'coal rps':>9} {'speedup':>8} {'ratio':>6} {'ident':>6}")
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        print(f"{r['graph']:<16} {r['clients']:>7} "
              f"{r['uncoalesced']['throughput_rps']:>11,.0f} "
              f"{r['coalesced']['throughput_rps']:>9,.0f} "
              f"{r['speedup']:>7.2f}x "
              f"{r['coalesced']['coalesce_ratio']:>6.2f} "
              f"{'ok' if r['identity']['bit_identical'] else 'FAIL':>6}")
    print()
    for name, gate in report["summary"]["gates"].items():
        if gate.get("skipped"):
            print(f"{name} gate SKIPPED: {gate['skipped']} "
                  f"(measured min {gate.get('min_speedup')}x)")
        else:
            detail = (f"min speedup {gate['min_speedup']}x, floor "
                      f"{gate['floor']}x" if "floor" in gate
                      else f"{gate['sampled']} responses sampled")
            print(f"{name} gate: {detail} (passed: {gate['passed']}"
                  + (f", {gate['failed_reason']}" if gate.get("failed_reason")
                     else "") + ")")
    print(f"regression check passed: {report['summary']['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: the RMAT suite at scale 13, "
                             "fewer requests per client")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every evaluated gate passed "
                             "(the throughput gate skips below "
                             f"{GATE_MIN_CORES} cores unless --require-cores; "
                             "the bit-identity gate always evaluates)")
    parser.add_argument("--require-cores", type=int, default=0, metavar="N",
                        help="hard-fail (instead of skipping the throughput "
                             "gate) when the machine has fewer than N cores")
    parser.add_argument("--clients", type=int, default=None,
                        help=f"concurrent closed-loop clients (default "
                             f"{GATE_MIN_CLIENTS}; the throughput gate only "
                             f"evaluates at >= {GATE_MIN_CLIENTS})")
    parser.add_argument("--per-client", type=int, default=None,
                        help="requests each client sends (default 8 quick / "
                             "25 full)")
    parser.add_argument("--threads", type=int, default=4,
                        help="engine context thread budget")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    clients = args.clients if args.clients is not None else GATE_MIN_CLIENTS
    per_client = (args.per_client if args.per_client is not None
                  else (8 if args.quick else 25))
    report = run(args.quick, args.threads, clients, per_client,
                 require_cores=args.require_cores)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and report["summary"]["check_passed"] is False:
        print(f"FAIL: serving regression gate not met (coalesced throughput "
              f">= {GATE_COALESCE_SPEEDUP}x uncoalesced at >= "
              f"{GATE_MIN_CLIENTS} clients, sampled responses bit-identical "
              f"to solo engine calls)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
