"""Engine study: workspace-reuse and adaptive-dispatch gains on the Fig. 3 sweep.

Two experiments on the ljournal-like graph of Figs. 2/3/6:

1. **Adaptive dispatch** — the Fig. 3 frontier-density sweep run through
   single-algorithm engines (bucket-only, graphmat-only) and through the
   adaptive ``"auto"`` engine.  The paper's §V future work proposes exactly
   this hybrid: vector-driven on sparse frontiers, matrix-driven once the
   vector densifies.  The report shows the per-size choice and the end-to-end
   simulated-time gain over the best single algorithm.

2. **Allocation reuse** (§III-A) — a BFS-like sequence of multiplications
   executed with fresh per-call allocations versus one persistent engine
   workspace; reports buffer constructions and Python wall time.
"""

import time

import pytest

from repro.core import SpMSpVEngine, get_algorithm
from repro.core.buckets import BucketStore
from repro.core.spa import SparseAccumulator
from repro.machine import EDISON, cost_model_for
from repro.parallel import default_context

from bench_common import emit, random_frontier, scale_free_graph
from repro.analysis import format_table, ratio

NNZ_VALUES = [1, 16, 50, 256, 1100, 4096, 16384, 65536]
REUSE_ROUNDS = 3


def _count_constructions(fn):
    """Run ``fn`` counting BucketStore/SparseAccumulator constructions.

    The function runs twice: the first pass warms caches (first-touch of the
    matrix, lazy registries), the second is timed.  Construction counts come
    from the timed pass only.
    """
    counts = {"buffers": 0}
    orig_store, orig_spa = BucketStore.__init__, SparseAccumulator.__init__

    def store_init(self, *a, **k):
        counts["buffers"] += 1
        orig_store(self, *a, **k)

    def spa_init(self, *a, **k):
        counts["buffers"] += 1
        orig_spa(self, *a, **k)

    fn()  # warm-up
    BucketStore.__init__ = store_init
    SparseAccumulator.__init__ = spa_init
    try:
        t0 = time.perf_counter()
        fn()
        wall_ms = (time.perf_counter() - t0) * 1e3
    finally:
        BucketStore.__init__ = orig_store
        SparseAccumulator.__init__ = orig_spa
    return counts["buffers"], wall_ms


def _adaptive_block(graph, ctx, model) -> str:
    matrix = graph.matrix
    engines = {name: SpMSpVEngine(matrix, ctx, algorithm=name)
               for name in ("bucket", "graphmat")}
    auto = SpMSpVEngine(matrix, ctx, algorithm="auto")
    totals = {"bucket": 0.0, "graphmat": 0.0, "auto": 0.0}
    rows = []
    for nnz in NNZ_VALUES:
        x = random_frontier(graph, nnz, seed=31)
        times = {}
        for name, engine in engines.items():
            record = engine.multiply(x).record
            times[name] = model.record_time_ms(record)
            totals[name] += times[name]
        auto_record = auto.multiply(x).record
        auto_ms = model.record_time_ms(auto_record)
        totals["auto"] += auto_ms
        rows.append([x.nnz, round(times["bucket"], 4), round(times["graphmat"], 4),
                     round(auto_ms, 4), auto.history[-1].algorithm])
    best_single = min(totals["bucket"], totals["graphmat"])
    rows.append(["TOTAL", round(totals["bucket"], 4), round(totals["graphmat"], 4),
                 round(totals["auto"], 4),
                 f"{ratio(best_single, totals['auto']):.2f}x vs best single"])
    return format_table(
        ["nnz(x)", "bucket", "graphmat", "auto", "auto chose"], rows,
        title=f"Adaptive dispatch on the Fig. 3 sweep (ms, simulated Edison, "
              f"{ctx.num_threads} threads, {graph.name}); switches: "
              f"{auto.switch_count}, algorithms used: {auto.algorithms_used()}")


def _reuse_block(graph, ctx) -> str:
    matrix = graph.matrix
    frontiers = [random_frontier(graph, nnz, seed=33)
                 for nnz in NNZ_VALUES for _ in range(REUSE_ROUNDS)]
    bucket = get_algorithm("bucket")

    def fresh():
        for x in frontiers:
            bucket(matrix, x, ctx)

    def reused():
        engine = SpMSpVEngine(matrix, ctx, algorithm="bucket")
        for x in frontiers:
            engine.multiply(x)

    fresh_allocs, fresh_ms = _count_constructions(fresh)
    reused_allocs, reused_ms = _count_constructions(reused)
    rows = [
        ["fresh per-call buffers", len(frontiers), fresh_allocs, round(fresh_ms, 1)],
        ["persistent engine workspace", len(frontiers), reused_allocs,
         round(reused_ms, 1)],
        ["saving", "", fresh_allocs - reused_allocs,
         f"{ratio(fresh_ms, reused_ms):.2f}x wall"],
    ]
    return format_table(
        ["execution mode", "SpMSpV calls", "buffer constructions", "wall (ms)"],
        rows,
        title="Workspace reuse over a BFS-like call sequence "
              "(the §III-A memory-allocation optimization)")


def _engine_report() -> str:
    graph = scale_free_graph()
    ctx = default_context(num_threads=12)
    model = cost_model_for(EDISON)
    return "\n\n".join([_adaptive_block(graph, ctx, model), _reuse_block(graph, ctx)])


@pytest.mark.benchmark(group="engine")
def test_engine_reuse_report(benchmark):
    report = benchmark.pedantic(_engine_report, rounds=1, iterations=1)
    emit("engine_reuse", report)


@pytest.mark.benchmark(group="engine-kernel")
def test_engine_call_wall_time(benchmark):
    """Wall-clock of one engine-served call at a mid-range frontier size."""
    graph = scale_free_graph()
    engine = SpMSpVEngine(graph.matrix, default_context(num_threads=4),
                          algorithm="bucket")
    x = random_frontier(graph, 4096, seed=32)
    engine.multiply(x)  # warm the workspace
    benchmark(lambda: engine.multiply(x))
