"""Sharded-vs-monolithic perf-regression harness.

Measures the wall-clock speedup of the partition-aware
:class:`~repro.core.sharded.ShardedEngine` — P row strips, one independent
single-strip kernel call each, outputs concatenated — over the monolithic
:class:`~repro.core.engine.SpMSpVEngine` running the same context's
T-thread emulation inside one kernel call, across the RMAT suite graphs.
On one physical core the comparison isolates a real architectural effect:
the monolithic T-thread emulation pays T chunked sub-gathers and 4·T
per-bucket merge loops of Python-level overhead per multiplication, while
each strip call runs the paper's row-split configuration (one thread per
strip, sync-free) through the bucket kernel's fused ``single_pass`` path —
one gather, one stable row sort.  Three workloads per (graph, P):

* ``multiply`` — a BFS-shaped random frontier through both engines (the
  primitive itself; this is the gated workload);
* ``multiply_many`` — k=8 fused frontiers, the sharded fused path packing
  the column-union block once and executing it per strip;
* ``bfs`` — a full traversal via ``bfs(..., shards=P)`` (the end-to-end
  algorithm).

A fourth workload, ``scheme_sweep``, compares the two sharding *schemes*
against each other: the row-split :class:`ShardedEngine` vs the
work-efficient column-split :class:`ColumnShardedEngine` at P=4 over a
sweep of frontier densities.  The paper's §II-F analysis predicts the
crossover: row-split scans the whole frontier in every strip (t·nnz(x)
work), column-split only touches the strip-local slice, so the sparser
the frontier the better column-split should look.

Results are printed as a table and written to ``BENCH_sharded.json``.  Exit
status is the regression gate used by CI:

    python benchmarks/bench_sharded.py --quick --check

fails (exit 1) unless, on every smoke graph, the sharded ``multiply`` is
>= 0.95x the monolithic engine at P=1 (the wrapper must be ~free) and
>= 1.2x at P=4 (sharding must genuinely pay), and — on machines with at
least 4 cores — the column scheme is >= 1.0x the row scheme at the
sparsest frontier of the sweep.  On fewer cores the scheme gate is
reported but skipped: a single-core host serialises the strip calls, so
the schemes' synchronization/work trade-off is not observable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import bfs
from repro.core import ColumnShardedEngine, ShardedEngine, SpMSpVEngine
from repro.formats import SparseVector
from repro.graphs import build_problem
from repro.parallel import default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 12), ("webgoogle-like", 12)]

SHARD_COUNTS = [1, 4]

#: gate thresholds: sharded multiply vs monolithic at each shard count
GATE_MIN_SPEEDUP = {1: 0.95, 4: 1.2}

#: frontier densities (nnz(x)/n) for the row-vs-column scheme sweep,
#: sparsest first — the sparsest point is the gated one
SCHEME_SWEEP_DENSITIES = [1 / 1024, 1 / 128, 1 / 16, 1 / 4]
SCHEME_SWEEP_SHARDS = 4

#: column must at least match row at the sparsest frontier (paper §II-F:
#: column-split is the work-efficient scheme precisely when x is sparse)
SCHEME_GATE_MIN_RATIO = 1.0
SCHEME_GATE_MIN_CORES = 4


def random_frontier(n: int, nnz: int, seed: int) -> SparseVector:
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
    return SparseVector(n, idx, rng.random(len(idx)) + 0.1)


def time_best_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-N for several competitors, rounds interleaved (stable ratios)."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], (time.perf_counter() - t0) * 1e3)
    return best


def time_best(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def bench_multiply(matrix, ctx, shards: int, nnz: int, rounds: int) -> dict:
    x = random_frontier(matrix.ncols, nnz, seed=13 * shards + 1)
    mono = SpMSpVEngine(matrix, ctx, algorithm="bucket")
    sharded = ShardedEngine(matrix, shards, ctx, algorithm="bucket")
    runs = {
        "monolithic": lambda: mono.multiply(x),
        "sharded": lambda: sharded.multiply(x),
    }
    for fn in runs.values():
        fn()  # warm workspaces
    return time_best_interleaved(runs, rounds)


def bench_multiply_many(matrix, ctx, shards: int, k: int, nnz: int,
                        rounds: int) -> dict:
    frontiers = [random_frontier(matrix.ncols, nnz, seed=17 * shards + i)
                 for i in range(k)]
    mono = SpMSpVEngine(matrix, ctx, algorithm="bucket")
    sharded = ShardedEngine(matrix, shards, ctx, algorithm="bucket")
    runs = {
        "monolithic": lambda: mono.multiply_many(frontiers, block_mode="fused"),
        "sharded": lambda: sharded.multiply_many(frontiers, block_mode="fused"),
    }
    for fn in runs.values():
        fn()
    return time_best_interleaved(runs, rounds)


def bench_scheme_sweep(matrix, ctx, shards: int, rounds: int) -> list:
    """Row-split vs column-split engine over a frontier-density sweep."""
    row_eng = ShardedEngine(matrix, shards, ctx, algorithm="bucket")
    col_eng = ColumnShardedEngine(matrix, shards, ctx, algorithm="bucket")
    sweep = []
    for density in SCHEME_SWEEP_DENSITIES:
        nnz = max(8, int(matrix.ncols * density))
        x = random_frontier(matrix.ncols, nnz, seed=29 + nnz)
        runs = {
            "row": lambda: row_eng.multiply(x),
            "column": lambda: col_eng.multiply(x),
        }
        for fn in runs.values():
            fn()  # warm workspaces / backend
        best = time_best_interleaved(runs, rounds)
        sweep.append({
            "density": density, "frontier_nnz": nnz,
            "row_ms": round(best["row"], 4),
            "column_ms": round(best["column"], 4),
            "column_over_row": round(best["row"] / best["column"], 4)
            if best["column"] > 0 else float("inf"),
        })
    return sweep


def bench_bfs(matrix, ctx, shards: int, rounds: int) -> dict:
    bfs(matrix, 0, ctx)  # warm
    bfs(matrix, 0, ctx, shards=shards)
    return {
        "monolithic": time_best(lambda: bfs(matrix, 0, ctx), max(1, rounds // 2)),
        "sharded": time_best(lambda: bfs(matrix, 0, ctx, shards=shards),
                             max(1, rounds // 2)),
    }


def run(quick: bool, threads: int, rounds: int) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ctx = default_context(num_threads=threads)
    report = {
        "benchmark": "sharded",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "shard_counts": SHARD_COUNTS,
        "gate": {str(p): s for p, s in GATE_MIN_SPEEDUP.items()},
        "graphs": [],
        "results": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        frontier_nnz = max(64, matrix.ncols // 64)
        for shards in SHARD_COUNTS:
            mm = bench_multiply(matrix, ctx, shards, frontier_nnz, rounds)
            report["results"].append({
                "graph": name, "workload": "multiply", "shards": shards,
                "frontier_nnz": frontier_nnz,
                "sharded_ms": round(mm["sharded"], 4),
                "monolithic_ms": round(mm["monolithic"], 4),
                "speedup": round(mm["monolithic"] / mm["sharded"], 4)
                if mm["sharded"] > 0 else float("inf"),
            })
            many = bench_multiply_many(matrix, ctx, shards, 8, frontier_nnz,
                                       rounds)
            report["results"].append({
                "graph": name, "workload": "multiply_many", "shards": shards,
                "k": 8, "frontier_nnz": frontier_nnz,
                "sharded_ms": round(many["sharded"], 4),
                "monolithic_ms": round(many["monolithic"], 4),
                "speedup": round(many["monolithic"] / many["sharded"], 4)
                if many["sharded"] > 0 else float("inf"),
            })
            bfs_times = bench_bfs(matrix, ctx, shards, rounds)
            report["results"].append({
                "graph": name, "workload": "bfs", "shards": shards,
                "sharded_ms": round(bfs_times["sharded"], 4),
                "monolithic_ms": round(bfs_times["monolithic"], 4),
                "speedup": round(bfs_times["monolithic"] / bfs_times["sharded"], 4)
                if bfs_times["sharded"] > 0 else float("inf"),
            })
        for point in bench_scheme_sweep(matrix, ctx, SCHEME_SWEEP_SHARDS,
                                        rounds):
            report["results"].append({
                "graph": name, "workload": "scheme_sweep",
                "shards": SCHEME_SWEEP_SHARDS, **point,
            })

    gate_results = {}
    for shards, floor in GATE_MIN_SPEEDUP.items():
        speedups = [r["speedup"] for r in report["results"]
                    if r["workload"] == "multiply" and r["shards"] == shards]
        gate_results[str(shards)] = {
            "min_speedup": min(speedups) if speedups else None,
            "floor": floor,
            "passed": bool(speedups and min(speedups) >= floor),
        }
    sparsest = min(SCHEME_SWEEP_DENSITIES)
    sparse_ratios = [r["column_over_row"] for r in report["results"]
                     if r["workload"] == "scheme_sweep"
                     and r["density"] == sparsest]
    cores = os.cpu_count() or 1
    scheme_gate = {
        "density": sparsest,
        "min_column_over_row": min(sparse_ratios) if sparse_ratios else None,
        "floor": SCHEME_GATE_MIN_RATIO,
        "cores": cores,
        "skipped": cores < SCHEME_GATE_MIN_CORES,
        "passed": bool(cores < SCHEME_GATE_MIN_CORES
                       or (sparse_ratios
                           and min(sparse_ratios) >= SCHEME_GATE_MIN_RATIO)),
    }
    report["summary"] = {
        "gates": gate_results,
        "scheme_gate": scheme_gate,
        "check_passed": all(g["passed"] for g in gate_results.values())
        and scheme_gate["passed"],
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'workload':<15} {'P':>3} {'monolithic ms':>14} " \
             f"{'sharded ms':>11} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        if r["workload"] == "scheme_sweep":
            continue
        print(f"{r['graph']:<16} {r['workload']:<15} {r['shards']:>3} "
              f"{r['monolithic_ms']:>14.3f} {r['sharded_ms']:>11.3f} "
              f"{r['speedup']:>7.2f}x")
    sweep = [r for r in report["results"] if r["workload"] == "scheme_sweep"]
    if sweep:
        header = f"{'graph':<16} {'nnz(x)/n':>10} {'row ms':>10} " \
                 f"{'column ms':>10} {'col/row':>8}"
        print("\nrow-split vs column-split "
              f"(P={SCHEME_SWEEP_SHARDS}, sparsest first)")
        print(header)
        print("-" * len(header))
        for r in sweep:
            print(f"{r['graph']:<16} {r['density']:>10.5f} "
                  f"{r['row_ms']:>10.3f} {r['column_ms']:>10.3f} "
                  f"{r['column_over_row']:>7.2f}x")
    for shards, gate in report["summary"]["gates"].items():
        print(f"min multiply speedup at P={shards}: {gate['min_speedup']} "
              f"(floor {gate['floor']}x, passed: {gate['passed']})")
    sg = report["summary"]["scheme_gate"]
    if sg["skipped"]:
        print(f"scheme gate skipped: {sg['cores']} core(s) < "
              f"{SCHEME_GATE_MIN_CORES} (strip calls serialise; the schemes' "
              f"trade-off is not observable)")
    else:
        print(f"min column/row at density {sg['density']:.5f}: "
              f"{sg['min_column_over_row']} (floor {sg['floor']}x, "
              f"passed: {sg['passed']})")
    print(f"regression check passed: {report['summary']['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: the RMAT suite at scale 12")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless sharded multiply is >= 0.95x "
                             "monolithic at P=1 and >= 1.2x at P=4 on every "
                             "graph")
    parser.add_argument("--threads", type=int, default=8,
                        help="emulated thread count of the shared context "
                             "(the monolithic engine emulates all of them in "
                             "one kernel call; the sharded engine schedules "
                             "its strips onto them)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 5 quick / 7 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_sharded.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (5 if args.quick else 7)
    report = run(args.quick, args.threads, rounds)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and not report["summary"]["check_passed"]:
        print("FAIL: sharded regression gate (multiply >= 0.95x at P=1, "
              ">= 1.2x at P=4, column >= 1.0x row at the sparsest frontier "
              "on >= 4 cores) not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
