"""Block-fusion perf-regression harness: fused vs looped ``multiply_many``.

Measures the wall-clock speedup of the fused vector-block kernel
(:func:`repro.core.spmspv_block.spmspv_bucket_block`, one gather/scatter per
batch) over the per-vector loop, across block widths k, on the RMAT suite
graphs — the multi-source-BFS-shaped workload the fusion exists for.  Four
workloads per (graph, k):

* ``multiply_many`` — k random frontiers through one engine, forced
  ``block_mode="fused"`` vs ``"looped"`` (the primitive itself);
* ``multiply_many_masked`` — the same with per-vector complement masks over
  half the rows (the multi-source-BFS shape), exercising the early-masking
  fold: dead (row, vector-id) pairs dropped at scatter time;
* ``merge_modes`` — forced-fused execution with **dense** frontiers (the
  high-d·f regime where the PR 2 global composite-key sort was sort-bound),
  segmented per-(vector, bucket) merge vs the legacy global sort;
* ``bfs_multi_source`` — a full k-source BFS in each mode (the end-to-end
  algorithm).

Results are printed as a table and written to a machine-readable
``BENCH_block_fusion.json`` so the benchmark trajectory records per-k
speedups over time.  Exit status is the regression gate used by CI:

    python benchmarks/bench_block_fusion.py --quick --check

fails (exit 1) if fused is *slower* than looped at k=16 on the smoke graph
(unmasked or masked), or if the segmented merge is slower than the global
sort at the high-d·f configuration.  A full run additionally reports the
paper-style target: >= 2x fused-vs-looped at k >= 8.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import bfs_multi_source
from repro.core import SpMSpVEngine
from repro.formats import SparseVector
from repro.graphs import build_problem
from repro.parallel import default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 12)]

FULL_KS = [1, 2, 4, 8, 16, 32]
QUICK_KS = [4, 16]

#: gate: fused must not be slower than looped at this k (CI smoke check)
CHECK_K = 16
#: full-run target from the issue: >= 2x at k >= 8
TARGET_SPEEDUP, TARGET_K = 2.0, 8
#: dense-frontier divisor of the high-d·f merge-mode configurations
#: (frontier nnz = ncols // HIGH_DF_DIVISOR — the regime where the global
#: composite-key sort dominated the fused kernel)
HIGH_DF_DIVISOR = 8


def random_frontiers(n: int, k: int, nnz: int, seed: int):
    rng = np.random.default_rng(seed)
    frontiers = []
    for i in range(k):
        idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
        frontiers.append(SparseVector(n, idx, rng.random(len(idx)) + 0.1))
    return frontiers


def random_masks(m: int, k: int, seed: int):
    """Per-vector masks over half the rows (the visited-set shape of BFS)."""
    rng = np.random.default_rng(seed)
    return [SparseVector.full_like_indices(
        m, np.sort(rng.choice(m, size=m // 2, replace=False)), 1.0)
        for _ in range(k)]


def time_best(fn, rounds: int) -> float:
    """Best-of-N wall time in milliseconds (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def time_best_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-N for several competitors, rounds interleaved.

    Alternating the competitors inside every round (instead of timing one
    fully before the other) exposes them to the same allocator / frequency /
    cache drift, so their *ratio* — which is what the regression gates
    check — stays stable even when absolute times wander.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], (time.perf_counter() - t0) * 1e3)
    return best


def bench_multiply_many(matrix, ctx, k: int, nnz: int, rounds: int,
                        masked: bool = False):
    """Forced fused vs looped multiply_many over k random frontiers."""
    frontiers = random_frontiers(matrix.ncols, k, nnz, seed=17 * k + 1)
    masks = random_masks(matrix.nrows, k, seed=29 * k + 3) if masked else None
    runs = {}
    for mode in ("looped", "fused"):
        engine = SpMSpVEngine(matrix, ctx, algorithm="bucket")
        run = lambda engine=engine, mode=mode: engine.multiply_many(
            frontiers, masks=masks, mask_complement=masked, block_mode=mode)
        run()  # warm workspace
        runs[mode] = run
    return time_best_interleaved(runs, rounds)


def bench_merge_modes(matrix, ctx, k: int, nnz: int, rounds: int):
    """Segmented vs global merge inside the fused kernel, dense frontiers."""
    frontiers = random_frontiers(matrix.ncols, k, nnz, seed=23 * k + 5)
    runs = {}
    for merge in ("global", "segmented"):
        engine = SpMSpVEngine(matrix, ctx, algorithm="bucket")
        run = lambda engine=engine, merge=merge: engine.multiply_many(
            frontiers, block_mode="fused", block_merge=merge)
        run()  # warm workspace
        runs[merge] = run
    return time_best_interleaved(runs, rounds)


def bench_bfs(matrix, ctx, k: int, rounds: int):
    """Full k-source BFS, fused vs looped block path."""
    sources = list(range(k))
    times = {}
    for mode in ("looped", "fused"):
        bfs_multi_source(matrix, sources, ctx, block_mode=mode)  # warm
        times[mode] = time_best(
            lambda: bfs_multi_source(matrix, sources, ctx, block_mode=mode),
            max(1, rounds // 2))
    return times


def run(quick: bool, threads: int, rounds: int) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ks = QUICK_KS if quick else FULL_KS
    ctx = default_context(num_threads=threads)
    report = {
        "benchmark": "block_fusion",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "check_k": CHECK_K,
        "target": {"speedup": TARGET_SPEEDUP, "min_k": TARGET_K},
        "graphs": [],
        "results": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        frontier_nnz = max(64, matrix.ncols // 64)
        dense_nnz = max(256, matrix.ncols // HIGH_DF_DIVISOR)
        for k in ks:
            mm = bench_multiply_many(matrix, ctx, k, frontier_nnz, rounds)
            report["results"].append({
                "graph": name, "workload": "multiply_many", "k": k,
                "frontier_nnz": frontier_nnz,
                "fused_ms": round(mm["fused"], 4),
                "looped_ms": round(mm["looped"], 4),
                "speedup": round(mm["looped"] / mm["fused"], 4)
                if mm["fused"] > 0 else float("inf"),
            })
            if k >= 4:
                masked = bench_multiply_many(matrix, ctx, k, frontier_nnz,
                                             rounds, masked=True)
                report["results"].append({
                    "graph": name, "workload": "multiply_many_masked", "k": k,
                    "frontier_nnz": frontier_nnz,
                    "fused_ms": round(masked["fused"], 4),
                    "looped_ms": round(masked["looped"], 4),
                    "speedup": round(masked["looped"] / masked["fused"], 4)
                    if masked["fused"] > 0 else float("inf"),
                })
            if k >= 8:
                merge = bench_merge_modes(matrix, ctx, k, dense_nnz, rounds)
                report["results"].append({
                    "graph": name, "workload": "merge_modes", "k": k,
                    "frontier_nnz": dense_nnz,
                    "segmented_ms": round(merge["segmented"], 4),
                    "global_ms": round(merge["global"], 4),
                    "speedup": round(merge["global"] / merge["segmented"], 4)
                    if merge["segmented"] > 0 else float("inf"),
                })
            if k >= 4:
                bfs_times = bench_bfs(matrix, ctx, k, rounds)
                report["results"].append({
                    "graph": name, "workload": "bfs_multi_source", "k": k,
                    "fused_ms": round(bfs_times["fused"], 4),
                    "looped_ms": round(bfs_times["looped"], 4),
                    "speedup": round(bfs_times["looped"] / bfs_times["fused"], 4)
                    if bfs_times["fused"] > 0 else float("inf"),
                })

    mm_at_target = [r["speedup"] for r in report["results"]
                    if r["workload"] == "multiply_many" and r["k"] >= TARGET_K]
    mm_at_check = [r["speedup"] for r in report["results"]
                   if r["workload"] in ("multiply_many", "multiply_many_masked")
                   and r["k"] == CHECK_K]
    merge_speedups = [r["speedup"] for r in report["results"]
                      if r["workload"] == "merge_modes"]
    report["summary"] = {
        "min_speedup_at_target_k": min(mm_at_target) if mm_at_target else None,
        "target_met": bool(mm_at_target and min(mm_at_target) >= TARGET_SPEEDUP),
        "min_speedup_at_check_k": min(mm_at_check) if mm_at_check else None,
        "min_segmented_vs_global": min(merge_speedups) if merge_speedups else None,
        "check_passed": bool(
            mm_at_check and min(mm_at_check) >= 1.0
            and merge_speedups and min(merge_speedups) >= 1.0),
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'workload':<20} {'k':>4} {'baseline ms':>12} " \
             f"{'new ms':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        if r["workload"] == "merge_modes":
            base, new = r["global_ms"], r["segmented_ms"]
        else:
            base, new = r["looped_ms"], r["fused_ms"]
        print(f"{r['graph']:<16} {r['workload']:<20} {r['k']:>4} "
              f"{base:>12.3f} {new:>10.3f} {r['speedup']:>7.2f}x")
    s = report["summary"]
    print(f"\nmin speedup at k>={TARGET_K} (multiply_many): "
          f"{s['min_speedup_at_target_k']} "
          f"(target {TARGET_SPEEDUP}x met: {s['target_met']})")
    print(f"min fused-vs-looped at k={CHECK_K} (incl. masked): "
          f"{s['min_speedup_at_check_k']}")
    print(f"min segmented-vs-global merge (high d·f): "
          f"{s['min_segmented_vs_global']}")
    print(f"regression check passed: {s['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: one small graph, k in {4, 16}")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if fused is slower than looped at k=16 "
                             "(unmasked or masked) or the segmented merge is "
                             "slower than the global sort")
    parser.add_argument("--threads", type=int, default=8,
                        help="emulated thread count of the execution context "
                             "(Edison-style multi-threaded runs, as the other "
                             "bench modules use; the looped path's per-bucket "
                             "work grows with nb = 4t while the fused path is "
                             "insensitive to it)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 3 quick / 5 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_block_fusion.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 5)
    report = run(args.quick, args.threads, rounds)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and not report["summary"]["check_passed"]:
        print("FAIL: block-fusion regression gate "
              f"(fused-vs-looped at k={CHECK_K} incl. masked, and "
              "segmented-vs-global merge) not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
