"""Block-fusion perf-regression harness: fused vs looped ``multiply_many``.

Measures the wall-clock speedup of the fused vector-block kernel
(:func:`repro.core.spmspv_block.spmspv_bucket_block`, one gather/scatter per
batch) over the per-vector loop, across block widths k, on the RMAT suite
graphs — the multi-source-BFS-shaped workload the fusion exists for.  Two
workloads per (graph, k):

* ``multiply_many`` — k random frontiers through one engine, forced
  ``block_mode="fused"`` vs ``"looped"`` (the primitive itself);
* ``bfs_multi_source`` — a full k-source BFS in each mode (the end-to-end
  algorithm).

Results are printed as a table and written to a machine-readable
``BENCH_block_fusion.json`` so the benchmark trajectory records per-k
speedups over time.  Exit status is the regression gate used by CI:

    python benchmarks/bench_block_fusion.py --quick --check

fails (exit 1) if fused is *slower* than looped at k=16 on the smoke graph.
A full run additionally reports the paper-style target: >= 2x at k >= 8.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import bfs_multi_source
from repro.core import SpMSpVEngine
from repro.formats import SparseVector
from repro.graphs import build_problem
from repro.parallel import default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 12)]

FULL_KS = [1, 2, 4, 8, 16, 32]
QUICK_KS = [4, 16]

#: gate: fused must not be slower than looped at this k (CI smoke check)
CHECK_K = 16
#: full-run target from the issue: >= 2x at k >= 8
TARGET_SPEEDUP, TARGET_K = 2.0, 8


def random_frontiers(n: int, k: int, nnz: int, seed: int):
    rng = np.random.default_rng(seed)
    frontiers = []
    for i in range(k):
        idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
        frontiers.append(SparseVector(n, idx, rng.random(len(idx)) + 0.1))
    return frontiers


def time_best(fn, rounds: int) -> float:
    """Best-of-N wall time in milliseconds (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def bench_multiply_many(matrix, ctx, k: int, nnz: int, rounds: int):
    """Forced fused vs looped multiply_many over k random frontiers."""
    frontiers = random_frontiers(matrix.ncols, k, nnz, seed=17 * k + 1)
    times = {}
    for mode in ("looped", "fused"):
        engine = SpMSpVEngine(matrix, ctx, algorithm="bucket")
        engine.multiply_many(frontiers, block_mode=mode)  # warm workspace
        times[mode] = time_best(
            lambda: engine.multiply_many(frontiers, block_mode=mode), rounds)
    return times


def bench_bfs(matrix, ctx, k: int, rounds: int):
    """Full k-source BFS, fused vs looped block path."""
    sources = list(range(k))
    times = {}
    for mode in ("looped", "fused"):
        bfs_multi_source(matrix, sources, ctx, block_mode=mode)  # warm
        times[mode] = time_best(
            lambda: bfs_multi_source(matrix, sources, ctx, block_mode=mode),
            max(1, rounds // 2))
    return times


def run(quick: bool, threads: int, rounds: int) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ks = QUICK_KS if quick else FULL_KS
    ctx = default_context(num_threads=threads)
    report = {
        "benchmark": "block_fusion",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "check_k": CHECK_K,
        "target": {"speedup": TARGET_SPEEDUP, "min_k": TARGET_K},
        "graphs": [],
        "results": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        frontier_nnz = max(64, matrix.ncols // 64)
        for k in ks:
            mm = bench_multiply_many(matrix, ctx, k, frontier_nnz, rounds)
            report["results"].append({
                "graph": name, "workload": "multiply_many", "k": k,
                "frontier_nnz": frontier_nnz,
                "fused_ms": round(mm["fused"], 4),
                "looped_ms": round(mm["looped"], 4),
                "speedup": round(mm["looped"] / mm["fused"], 4)
                if mm["fused"] > 0 else float("inf"),
            })
            if k >= 4:
                bfs_times = bench_bfs(matrix, ctx, k, rounds)
                report["results"].append({
                    "graph": name, "workload": "bfs_multi_source", "k": k,
                    "fused_ms": round(bfs_times["fused"], 4),
                    "looped_ms": round(bfs_times["looped"], 4),
                    "speedup": round(bfs_times["looped"] / bfs_times["fused"], 4)
                    if bfs_times["fused"] > 0 else float("inf"),
                })

    mm_at_target = [r["speedup"] for r in report["results"]
                    if r["workload"] == "multiply_many" and r["k"] >= TARGET_K]
    mm_at_check = [r["speedup"] for r in report["results"]
                   if r["workload"] == "multiply_many" and r["k"] == CHECK_K]
    report["summary"] = {
        "min_speedup_at_target_k": min(mm_at_target) if mm_at_target else None,
        "target_met": bool(mm_at_target and min(mm_at_target) >= TARGET_SPEEDUP),
        "min_speedup_at_check_k": min(mm_at_check) if mm_at_check else None,
        "check_passed": bool(mm_at_check and min(mm_at_check) >= 1.0),
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'workload':<18} {'k':>4} {'looped ms':>10} " \
             f"{'fused ms':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        print(f"{r['graph']:<16} {r['workload']:<18} {r['k']:>4} "
              f"{r['looped_ms']:>10.3f} {r['fused_ms']:>10.3f} "
              f"{r['speedup']:>7.2f}x")
    s = report["summary"]
    print(f"\nmin speedup at k>={TARGET_K} (multiply_many): "
          f"{s['min_speedup_at_target_k']} "
          f"(target {TARGET_SPEEDUP}x met: {s['target_met']})")
    print(f"min speedup at k={CHECK_K}: {s['min_speedup_at_check_k']} "
          f"(regression check passed: {s['check_passed']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: one small graph, k in {4, 16}")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if fused is slower than looped at k=16")
    parser.add_argument("--threads", type=int, default=8,
                        help="emulated thread count of the execution context "
                             "(Edison-style multi-threaded runs, as the other "
                             "bench modules use; the looped path's per-bucket "
                             "work grows with nb = 4t while the fused path is "
                             "insensitive to it)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 3 quick / 5 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_block_fusion.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 5)
    report = run(args.quick, args.threads, rounds)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and not report["summary"]["check_passed"]:
        print(f"FAIL: fused multiply_many slower than looped at k={CHECK_K}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
