"""Figure 2: SpMSpV-bucket runtime with and without sorted input/output vectors.

The paper multiplies the ljournal-2008 adjacency matrix by vectors with 10K
and 2.5M nonzeros (0.19% and 47% of n) on 1-24 Edison cores.  We use the
ljournal-like stand-in and the same two *relative* densities.
"""

import pytest

from repro.analysis import format_series, scale_spmspv
from repro.core import spmspv_bucket
from repro.parallel import default_context

from bench_common import EDISON_THREADS, emit, random_frontier, scale_free_graph


def _figure2_report() -> str:
    graph = scale_free_graph()
    matrix = graph.matrix
    n = graph.num_vertices
    lines = ["Figure 2: SpMSpV-bucket with vs without sorted vectors "
             f"({graph.name}, n={n}, Edison preset)"]
    for label, frac in (("sparse (0.2% of n, paper: nnz=10K)", 0.002),
                        ("dense (47% of n, paper: nnz=2.5M)", 0.47)):
        nnz = max(1, int(frac * n))
        x = random_frontier(graph, nnz, seed=21)
        for sorted_vectors in (True, False):
            series = scale_spmspv(matrix, x, sorted_vectors=sorted_vectors,
                                  thread_counts=EDISON_THREADS,
                                  problem_name=graph.name)
            name = f"nnz(x)={nnz} {'with' if sorted_vectors else 'without'} sorting"
            lines.append(format_series(f"{label} | {name}",
                                       series.thread_counts(),
                                       [series.times_ms[t] for t in series.thread_counts()],
                                       x_label="cores", y_label="ms"))
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig2")
def test_fig2_sorted_vs_unsorted_report(benchmark):
    report = benchmark.pedantic(_figure2_report, rounds=1, iterations=1)
    emit("fig2_sorted_vs_unsorted", report)


@pytest.mark.benchmark(group="fig2-kernel")
@pytest.mark.parametrize("sorted_vectors", [True, False])
def test_fig2_kernel_wall_time(benchmark, sorted_vectors):
    """Wall-clock micro-benchmark of the real bucket kernel, sorted vs unsorted input."""
    graph = scale_free_graph()
    x = random_frontier(graph, graph.num_vertices // 10, seed=22)
    x = x if sorted_vectors else x.shuffled()
    ctx = default_context(num_threads=4, sorted_vectors=sorted_vectors)
    benchmark(lambda: spmspv_bucket(graph.matrix, x, ctx, sorted_output=sorted_vectors))
