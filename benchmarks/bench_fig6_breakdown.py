"""Figure 6: per-step breakdown of the SpMSpV-bucket algorithm across cores.

The paper decomposes the runtime into the four steps (estimate buckets,
bucketing, SPA-merge, output) for input vectors with 200, 10K and 2.5M
nonzeros on ljournal-2008 and reports (a) that SPA-merge dominates the
sequential runtime, (b) that bucketing catches up as the vector gets denser,
and (c) the per-step speedups at 24 cores (merge scales best, bucketing and
output are limited by irregular memory traffic).
"""

import pytest

from repro.analysis import STEP_NAMES, breakdown, format_table
from repro.core import spmspv_bucket
from repro.parallel import default_context

from bench_common import EDISON_THREADS, emit, random_frontier, scale_free_graph

#: relative densities matching the paper's nnz(x) = 200, 10K, 2.5M on n = 5.36M
RELATIVE_DENSITIES = [("nnz(x)~200 (0.004% of n)", 0.00004),
                      ("nnz(x)~10K (0.19% of n)", 0.0019),
                      ("nnz(x)~2.5M (47% of n)", 0.47)]


def _figure6_report() -> str:
    graph = scale_free_graph()
    matrix = graph.matrix
    n = graph.num_vertices
    blocks = []
    for label, frac in RELATIVE_DENSITIES:
        nnz = max(4, int(frac * n))
        x = random_frontier(graph, nnz, seed=61)
        result = breakdown(matrix, x, thread_counts=EDISON_THREADS,
                           problem_name=graph.name)
        rows = []
        for phase, display in STEP_NAMES.items():
            times = result.phase_times[phase]
            rows.append([display] + [round(times[t], 4) for t in EDISON_THREADS] +
                        [round(result.phase_speedup(phase, max(EDISON_THREADS)), 1),
                         f"{100 * result.phase_fraction(phase, 1):.0f}%"])
        blocks.append(format_table(
            ["step"] + [f"t={t}" for t in EDISON_THREADS] + ["speedup@24", "% of 1t time"],
            rows, title=f"Figure 6 [{label}, actual nnz(x)={nnz}]: per-step time "
                        f"(ms, simulated Edison) on {graph.name}"))
    return "\n\n".join(blocks)


@pytest.mark.benchmark(group="fig6")
def test_fig6_breakdown_report(benchmark):
    report = benchmark.pedantic(_figure6_report, rounds=1, iterations=1)
    emit("fig6_breakdown", report)


@pytest.mark.benchmark(group="fig6-kernel")
@pytest.mark.parametrize("nnz", [200, 10_000])
def test_fig6_kernel_wall_time(benchmark, nnz):
    """Wall-clock micro-benchmark of the bucket kernel at the Fig. 6 sparsities."""
    graph = scale_free_graph()
    x = random_frontier(graph, nnz, seed=62)
    ctx = default_context(num_threads=4)
    benchmark(lambda: spmspv_bucket(graph.matrix, x, ctx))
