"""Micro-benchmarks of the real (wall-clock) NumPy kernels and substrates.

These are not paper figures; they track the performance of this Python
implementation itself (format conversions, gathers, SPA accumulation, the
four SpMSpV kernels, and one BFS) so regressions in the library are visible.
"""

import numpy as np
import pytest

from repro.algorithms import bfs
from repro.core import SparseAccumulator, spmspv
from repro.formats import CSCMatrix, DCSCMatrix
from repro.parallel import default_context

from bench_common import ALGORITHMS, good_source, random_frontier, scale_free_graph


@pytest.mark.benchmark(group="substrate")
def test_gather_columns_kernel(benchmark):
    graph = scale_free_graph()
    x = random_frontier(graph, 8192, seed=71)
    benchmark(lambda: graph.matrix.gather_columns(x.indices))


@pytest.mark.benchmark(group="substrate")
def test_csc_from_coo_conversion(benchmark):
    coo = scale_free_graph().matrix.to_coo()
    benchmark(lambda: CSCMatrix.from_coo(coo, sum_duplicates=False))


@pytest.mark.benchmark(group="substrate")
def test_dcsc_construction(benchmark):
    matrix = scale_free_graph().matrix
    benchmark(lambda: DCSCMatrix.from_csc(matrix))


@pytest.mark.benchmark(group="substrate")
def test_spa_accumulate_kernel(benchmark):
    graph = scale_free_graph()
    rows, vals, _ = graph.matrix.gather_columns(random_frontier(graph, 4096, seed=72).indices)
    spa = SparseAccumulator(graph.num_vertices)

    def run():
        spa.reset()
        spa.accumulate(rows, vals)

    benchmark(run)


@pytest.mark.benchmark(group="spmspv-wall")
@pytest.mark.parametrize("algorithm", ALGORITHMS + ["sort"])
def test_spmspv_wall_time(benchmark, algorithm):
    graph = scale_free_graph()
    x = random_frontier(graph, 2048, seed=73)
    ctx = default_context(num_threads=4)
    result = benchmark(lambda: spmspv(graph.matrix, x, ctx, algorithm=algorithm))
    assert result.vector.nnz > 0


@pytest.mark.benchmark(group="applications")
def test_bfs_wall_time(benchmark):
    graph = scale_free_graph()
    source = good_source(graph)
    result = benchmark.pedantic(
        lambda: bfs(graph, source, default_context(num_threads=2), algorithm="bucket"),
        rounds=3, iterations=1)
    assert result.num_reached > 1
