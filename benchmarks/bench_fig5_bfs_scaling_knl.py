"""Figure 5: strong scaling of three SpMSpV algorithms inside BFS on the KNL preset.

As in the paper, GraphMat is omitted on KNL ("we were unable to run GraphMat
on KNL") and the thread count goes up to 64.  The paper's summary: bucket
32x average speedup (max 49x), CombBLAS-SPA 12x, CombBLAS-heap 20x.
"""

import pytest

from repro.analysis import compare_algorithms_bfs, format_table, speedup_summary
from repro.graphs import Graph, rmat
from repro.machine import KNL

from bench_common import KNL_THREADS, emit, good_source, high_diameter_graph, \
    scale_free_graph

KNL_ALGORITHMS = ["bucket", "combblas_spa", "combblas_heap"]


def _problems():
    return [
        scale_free_graph(),
        Graph(rmat(scale=14, edge_factor=6, a=0.6, b=0.19, c=0.15, seed=13),
              name="webgoogle-like"),
        Graph(rmat(scale=14, edge_factor=15, seed=14), name="wikipedia-like"),
        high_diameter_graph(120),
    ]


def _figure5_report() -> str:
    blocks = []
    per_algorithm_series = {alg: {} for alg in KNL_ALGORITHMS}
    for graph in _problems():
        source = good_source(graph)
        series = compare_algorithms_bfs(graph, source, algorithms=KNL_ALGORITHMS,
                                        platform=KNL, thread_counts=KNL_THREADS,
                                        problem_name=graph.name)
        rows = []
        for alg in KNL_ALGORITHMS:
            s = series[alg]
            rows.append([alg] + [round(s.times_ms[t], 3) for t in KNL_THREADS] +
                        [round(s.speedup(max(KNL_THREADS)), 1)])
            per_algorithm_series[alg][graph.name] = s
        blocks.append(format_table(
            ["algorithm"] + [f"t={t}" for t in KNL_THREADS] + ["speedup@64"],
            rows, title=f"Figure 5 [{graph.name}]: BFS SpMSpV time (ms, simulated KNL)"))
    summary_rows = []
    for alg in KNL_ALGORITHMS:
        s = speedup_summary(per_algorithm_series[alg])
        summary_rows.append([alg, round(s["avg"], 1), round(s["max"], 1), round(s["min"], 1)])
    blocks.append(format_table(
        ["algorithm", "avg speedup@64", "max", "min"], summary_rows,
        title="Section IV-E speedup summary (paper: bucket 32x avg/49x max, "
              "CombBLAS-SPA 12x, CombBLAS-heap 20x)"))
    return "\n\n".join(blocks)


@pytest.mark.benchmark(group="fig5")
def test_fig5_bfs_scaling_knl_report(benchmark):
    report = benchmark.pedantic(_figure5_report, rounds=1, iterations=1)
    emit("fig5_bfs_scaling_knl", report)
