"""Figure 4: strong scaling of the four SpMSpV algorithms inside BFS (Edison).

The paper runs BFS on eleven graphs at 1-24 Edison cores and reports the
summed SpMSpV time per run; SpMSpV-bucket is the fastest everywhere and its
advantage is largest on the high-diameter graphs.  We reproduce the
experiment on four class-matched stand-ins (two scale-free, two mesh-like)
and print the §IV-D style speedup summary.
"""

import pytest

from repro.algorithms import bfs
from repro.analysis import compare_algorithms_bfs, format_series, format_table, \
    speedup_summary
from repro.graphs import Graph, grid_2d, rmat
from repro.machine import EDISON
from repro.parallel import default_context

from bench_common import ALGORITHMS, emit, good_source, high_diameter_graph, \
    scale_free_graph

THREADS = [1, 4, 12, 24]


def _problems():
    return [
        scale_free_graph(),                                             # ljournal-like
        Graph(rmat(scale=14, edge_factor=6, a=0.6, b=0.19, c=0.15, seed=13),
              name="webgoogle-like"),
        high_diameter_graph(),                                          # hugetric-like
        Graph(grid_2d(110, 220, diagonal=True, seed=19), name="hugetrace-like"),
    ]


def _figure4_report() -> str:
    blocks = []
    per_algorithm_series = {alg: {} for alg in ALGORITHMS}
    for graph in _problems():
        source = good_source(graph)
        series = compare_algorithms_bfs(graph, source, algorithms=ALGORITHMS,
                                        platform=EDISON, thread_counts=THREADS,
                                        problem_name=graph.name)
        rows = []
        for alg in ALGORITHMS:
            s = series[alg]
            rows.append([alg] + [round(s.times_ms[t], 3) for t in THREADS] +
                        [round(s.speedup(max(THREADS)), 1)])
            per_algorithm_series[alg][graph.name] = s
        blocks.append(format_table(
            ["algorithm"] + [f"t={t}" for t in THREADS] + ["speedup@24"],
            rows, title=f"Figure 4 [{graph.name}]: BFS SpMSpV time (ms, simulated Edison)"))
    summary_rows = []
    for alg in ALGORITHMS:
        s = speedup_summary(per_algorithm_series[alg])
        summary_rows.append([alg, round(s["avg"], 1), round(s["max"], 1), round(s["min"], 1)])
    blocks.append(format_table(
        ["algorithm", "avg speedup@24", "max", "min"], summary_rows,
        title="Section IV-D speedup summary (paper: bucket 11x avg, CombBLAS-SPA 6x, "
              "CombBLAS-heap 12x, GraphMat 11x)"))
    return "\n\n".join(blocks)


@pytest.mark.benchmark(group="fig4")
def test_fig4_bfs_scaling_edison_report(benchmark):
    report = benchmark.pedantic(_figure4_report, rounds=1, iterations=1)
    emit("fig4_bfs_scaling_edison", report)


@pytest.mark.benchmark(group="fig4-kernel")
def test_fig4_bfs_wall_time_bucket(benchmark):
    """Wall-clock micro-benchmark: one full BFS with the bucket kernel."""
    graph = scale_free_graph()
    source = good_source(graph)
    ctx = default_context(num_threads=4)
    benchmark.pedantic(lambda: bfs(graph, source, ctx, algorithm="bucket"),
                       rounds=3, iterations=1)
