"""Regenerate Tables I-IV of the paper.

* Table I  — classification of SpMSpV algorithms with measured total work
             next to the analytical complexity.
* Table II — characteristics of SPA-based algorithms: measured work growth
             with the thread count and synchronization events.
* Table III — the evaluated-platform presets.
* Table IV — the benchmark-suite stand-ins with their measured sizes and
             pseudo-diameters.
"""

import pytest

from repro.analysis import (
    TABLE1_PROFILES,
    audit_all,
    format_table,
    lower_bound_ops,
    table2_rows,
)
from repro.core import spmspv
from repro.graphs import SUITE
from repro.machine import EDISON, KNL
from repro.parallel import default_context

from bench_common import emit, random_frontier, scale_free_graph


def _table1_report() -> str:
    graph = scale_free_graph()
    matrix = graph.matrix
    x = random_frontier(graph, 2000, seed=1)
    d = matrix.average_degree()
    rows = []
    for profile in TABLE1_PROFILES:
        result = spmspv(matrix, x, default_context(num_threads=1), algorithm=profile.name)
        work = result.record.total_work().total_operations()
        rows.append([profile.display_name, profile.algo_class, profile.matrix_format,
                     profile.vector_format, profile.merging,
                     profile.sequential_complexity, profile.parallel_complexity,
                     int(work), round(work / lower_bound_ops(d, x.nnz), 2)])
    return format_table(
        ["algorithm", "class", "matrix", "vector", "merging", "seq. complexity",
         "par. complexity", "measured ops (1t)", "ops / (d*f)"],
        rows, title="Table I: classification of SpMSpV algorithms (measured on "
                    f"{graph.name}, nnz(x)={x.nnz})")


def _table2_report() -> str:
    graph = scale_free_graph()
    x = random_frontier(graph, 2000, seed=2)
    audits = audit_all(graph.matrix, x, [1, 4, 12, 24])
    rows = [[r["algorithm"], r["claimed_work_efficient"], r["measured_work_growth"],
             r["measured_work_efficient"], r["work_over_lower_bound_1t"],
             r["sync_events_max_t"]] for r in table2_rows(audits)]
    return format_table(
        ["algorithm", "claimed work-efficient", "work growth 1->24t",
         "measured work-efficient", "work/(d*f) at 1t", "sync events at 24t"],
        rows, title="Table II: work-efficiency characteristics (measured)")


def _table3_report() -> str:
    rows = []
    for platform in (KNL, EDISON):
        rows.append([platform.name, platform.sockets, platform.cores_per_socket,
                     platform.clock_ghz, platform.l1_kb, platform.l2_kb,
                     platform.stream_bw_gbs, platform.dp_gflops_per_core])
    return format_table(
        ["platform", "sockets", "cores/socket", "GHz", "L1 KB", "L2 KB",
         "STREAM GB/s", "DP GFlop/s/core"],
        rows, title="Table III: evaluated platform presets")


def _table4_report() -> str:
    rows = []
    for problem in SUITE:
        graph = problem.build(max(2, problem.default_scale // 2))
        rows.append([problem.graph_class, problem.name, problem.paper_counterpart,
                     graph.num_vertices, graph.num_edges // 2, graph.pseudo_diameter()])
    return format_table(
        ["class", "graph", "stands in for", "#vertices", "#edges", "pseudo-diameter"],
        rows, title="Table IV: benchmark suite (scaled-down stand-ins)")


@pytest.mark.benchmark(group="table1")
def test_table1_classification(benchmark):
    report = benchmark.pedantic(_table1_report, rounds=1, iterations=1)
    emit("table1_classification", report)


@pytest.mark.benchmark(group="table2")
def test_table2_characteristics(benchmark):
    report = benchmark.pedantic(_table2_report, rounds=1, iterations=1)
    emit("table2_characteristics", report)


@pytest.mark.benchmark(group="table3")
def test_table3_platforms(benchmark):
    report = benchmark.pedantic(_table3_report, rounds=1, iterations=1)
    emit("table3_platforms", report)


@pytest.mark.benchmark(group="table4")
def test_table4_suite(benchmark):
    report = benchmark.pedantic(_table4_report, rounds=1, iterations=1)
    emit("table4_suite", report)
