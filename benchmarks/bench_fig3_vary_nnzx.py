"""Figure 3: runtime of the four SpMSpV algorithms as nnz(x) varies.

The paper uses BFS frontiers of ljournal-2008 with 1 to ~1.9M nonzeros on 1
and 12 Edison threads, and quotes headline ratios at nnz(x)=50 and 1100
(bucket 200x/81x/744x faster than CombBLAS-SPA / CombBLAS-heap / GraphMat at
nnz=50 on one thread).  We sweep the same relative sparsity range on the
ljournal-like stand-in and print the same ratio rows.
"""

import pytest

from repro.analysis import format_table, ratio
from repro.core import spmspv
from repro.machine import EDISON, cost_model_for
from repro.parallel import default_context

from bench_common import ALGORITHMS, emit, random_frontier, scale_free_graph

NNZ_VALUES = [1, 16, 50, 256, 1100, 4096, 16384, 65536]


def _figure3_report() -> str:
    graph = scale_free_graph()
    matrix = graph.matrix
    model = cost_model_for(EDISON)
    blocks = []
    ratio_rows = []
    for threads in (1, 12):
        rows = []
        for nnz in NNZ_VALUES:
            nnz = min(nnz, graph.num_vertices)
            x = random_frontier(graph, nnz, seed=31)
            times = {}
            for algorithm in ALGORITHMS:
                result = spmspv(matrix, x, default_context(num_threads=threads),
                                algorithm=algorithm)
                times[algorithm] = model.record_time_ms(result.record)
            rows.append([nnz] + [round(times[a], 4) for a in ALGORITHMS])
            if threads == 1 and nnz in (50, 1100):
                ratio_rows.append([nnz,
                                   round(ratio(times["combblas_spa"], times["bucket"]), 1),
                                   round(ratio(times["combblas_heap"], times["bucket"]), 1),
                                   round(ratio(times["graphmat"], times["bucket"]), 1)])
        blocks.append(format_table(
            ["nnz(x)"] + ALGORITHMS, rows,
            title=f"Figure 3{'a' if threads == 1 else 'b'}: SpMSpV time (ms, simulated "
                  f"Edison) vs nnz(x), {threads} thread(s), {graph.name}"))
    blocks.append(format_table(
        ["nnz(x)", "CombBLAS-SPA / bucket", "CombBLAS-heap / bucket", "GraphMat / bucket"],
        ratio_rows,
        title="Headline ratios of Section IV-C (paper at full scale: 200x / 81x / 744x "
              "at nnz=50 and 68x / 21x / 191x at nnz=1100)"))
    return "\n\n".join(blocks)


@pytest.mark.benchmark(group="fig3")
def test_fig3_vary_nnzx_report(benchmark):
    report = benchmark.pedantic(_figure3_report, rounds=1, iterations=1)
    emit("fig3_vary_nnzx", report)


@pytest.mark.benchmark(group="fig3-kernel")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_kernel_wall_time(benchmark, algorithm):
    """Wall-clock micro-benchmark of each real kernel at a mid-range frontier size."""
    graph = scale_free_graph()
    x = random_frontier(graph, 4096, seed=32)
    ctx = default_context(num_threads=4)
    benchmark(lambda: spmspv(graph.matrix, x, ctx, algorithm=algorithm))
