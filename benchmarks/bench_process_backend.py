"""Process-vs-emulated backend perf-regression harness.

Measures the wall-clock effect of running the sharded engine's per-strip
kernel calls on the real ``multiprocessing`` worker pool
(:class:`~repro.parallel.backends.ProcessBackend` — strips in shared memory,
one persistent worker per strip slot) instead of the deterministic
in-process emulation (:class:`~repro.parallel.backends.EmulatedBackend`),
across the RMAT suite graphs.  Four timed workloads per graph, all at P=4
strips and 4 workers:

* ``multiply`` — a dense BFS-shaped frontier through the sharded engine on
  each backend (the primitive itself; gated at >= 1.3x process-vs-emulated);
* ``multiply_many`` — k=8 fused frontiers: the monolithic fused engine vs
  the process-backed sharded fused path.  This is the ROADMAP's single-core
  caveat — sharded fusion pays P x block-expansion overhead that only real
  cores can win back — so the gate is that the process backend is **no
  longer slower than monolithic** (>= 1.0x);
* ``column_scheme`` — the row-split vs the work-efficient column-split
  sharded engine, both process-backed, at a sparse frontier (n/64
  nonzeros).  Gated at column >= 1.0x row: the paper's §II-F regime where
  column-split's per-strip frontier slicing must pay for its reduction
  phase;
* ``resilience`` — the happy-path price of the resilience layer: the same
  process-backed engine run plain vs. with retries, degraded fallback and a
  generous deadline enabled, under **zero injected faults**
  (``REPRO_BACKEND_FAULTS`` is stripped for the phase, and the resilient
  engine's ``health_stats()`` are recorded to prove nothing fired).  Gated
  at the resilient engine keeping >= 0.95x the plain throughput, i.e. the
  bookkeeping costs at most ~5% when nothing fails.

A fourth, untimed phase audits the **comm plane**: with
``REPRO_BACKEND_COMM_AUDIT`` enabled the backend additionally accounts what
the legacy pickle-over-pipe data plane would have shipped for the same
calls, so the report carries an honest before/after per-call pipe-byte
breakdown.  The comm gate (pipe bytes per multiply reduced >= 10x by the
shared-memory slab plane) is machine-independent and always evaluated.

Wall-clock parallelism needs hardware: on machines with fewer than
``GATE_MIN_CORES`` physical cores the speedup numbers are still measured
and reported honestly, but those gates are recorded as skipped
(``"passed": null`` — a 1-core machine cannot exhibit a multi-process
speedup, only IPC overhead) and ``--check`` exits 0 unless
``--require-cores N`` says the machine was *supposed* to have cores, in
which case a core shortfall is a hard failure instead of a skip.
``check_passed`` is ``true``/``false`` only over gates that actually
evaluated, and ``null`` when every gate was skipped — a skip can no longer
be misread as a pass.

Results are printed as a table and written to ``BENCH_process_backend.json``.
Exit status is the regression gate used by CI:

    python benchmarks/bench_process_backend.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ColumnShardedEngine, ShardedEngine, SpMSpVEngine
from repro.formats import SparseVector
from repro.graphs import build_problem
from repro.parallel import RetryPolicy, default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 13), ("webgoogle-like", 13)]

SHARDS = 4
WORKERS = 4
BLOCK_K = 8
#: multiplies per graph in the (untimed) comm-audit phase
AUDIT_CALLS = 4

#: speedup gates need real cores: P=4 workers cannot beat one in-process
#: loop on fewer than 4 of them, so below this those gates report skipped
GATE_MIN_CORES = 4
#: sharded multiply on the process backend vs the emulated backend
GATE_MULTIPLY_SPEEDUP = 1.3
#: sharded fused multiply_many on the process backend vs the monolithic
#: fused engine (the ROADMAP caveat: "no longer slower than monolithic")
GATE_MANY_SPEEDUP = 1.0
#: pipe bytes per multiply: legacy pickle-over-pipe plane vs the
#: shared-memory comm plane (machine-independent, never skipped).  With
#: execution records shipped as metric matrices through the output slab
#: (instead of pickled over the pipe) the measured reduction is 175-189x,
#: so the gate holds a ~3x margin
GATE_COMM_REDUCTION = 60.0
#: row-split vs column-split sharded engines, both on the process backend,
#: at a sparse frontier (n/64): the work-efficient scheme must at least
#: match row-split where the paper says it wins (core-gated like the other
#: speedup gates — on one core the strips serialise either way)
GATE_COLUMN_SCHEME = 1.0
#: frontier divisor for the column-scheme phase (nnz(x) = n/64, sparse)
COLUMN_SCHEME_DIVISOR = 64
#: off-the-fault-path cost of the resilience machinery (deadline stamping,
#: retry bookkeeping, fallback plumbing) with ZERO injected faults: the
#: resilient engine must stay within 5% of the plain one
GATE_RESILIENCE_MIN = 0.95
#: multiplies per engine in the resilience-overhead phase
RESILIENCE_CALLS = 20


def dense_frontier(n: int, divisor: int, seed: int) -> SparseVector:
    rng = np.random.default_rng(seed)
    nnz = max(64, n // divisor)
    idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
    return SparseVector(n, idx, rng.random(len(idx)) + 0.1)


def time_best_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-N for several competitors, rounds interleaved (stable ratios)."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], (time.perf_counter() - t0) * 1e3)
    return best


def bench_multiply(matrix, ctx, rounds: int) -> dict:
    x = dense_frontier(matrix.ncols, 2, seed=31)
    emulated = ShardedEngine(matrix, SHARDS, ctx, algorithm="bucket")
    t0 = time.perf_counter()
    process = ShardedEngine(
        matrix, SHARDS, ctx.with_backend("process", workers=WORKERS),
        algorithm="bucket")
    setup_ms = (time.perf_counter() - t0) * 1e3
    try:
        runs = {
            "emulated": lambda: emulated.multiply(x),
            "process": lambda: process.multiply(x),
        }
        for fn in runs.values():
            fn()  # warm workspaces and the pool
        best = time_best_interleaved(runs, rounds)
    finally:
        process.close()
    best["setup_ms"] = setup_ms
    return best


def bench_multiply_many(matrix, ctx, rounds: int) -> dict:
    frontiers = [dense_frontier(matrix.ncols, 8, seed=41 + i)
                 for i in range(BLOCK_K)]
    monolithic = SpMSpVEngine(matrix, ctx, algorithm="bucket")
    process = ShardedEngine(
        matrix, SHARDS, ctx.with_backend("process", workers=WORKERS),
        algorithm="bucket")
    try:
        runs = {
            "monolithic": lambda: monolithic.multiply_many(
                frontiers, block_mode="fused"),
            "process": lambda: process.multiply_many(
                frontiers, block_mode="fused"),
        }
        for fn in runs.values():
            fn()
        return time_best_interleaved(runs, rounds)
    finally:
        process.close()

def bench_column_scheme(matrix, ctx, rounds: int) -> dict:
    """Row-split vs column-split sharded engine, both process-backed.

    The frontier is sparse (``n / COLUMN_SCHEME_DIVISOR`` nonzeros) — the
    regime where §II-F says column-split's per-strip frontier slicing beats
    row-split's whole-frontier broadcast.  The column engine's strips live
    in shared memory as DCSC (jc/cp/ir/num slabs) and its per-strip partial
    streams are merged parent-side in the reduction phase.
    """
    x = dense_frontier(matrix.ncols, COLUMN_SCHEME_DIVISOR, seed=53)
    base = ctx.with_backend("process", workers=WORKERS)
    row_eng = ShardedEngine(matrix, SHARDS, base, algorithm="bucket")
    col_eng = ColumnShardedEngine(matrix, SHARDS, base, algorithm="bucket")
    try:
        runs = {
            "row": lambda: row_eng.multiply(x),
            "column": lambda: col_eng.multiply(x),
        }
        for fn in runs.values():
            fn()  # warm workspaces and both pools
        return time_best_interleaved(runs, rounds)
    finally:
        row_eng.close()
        col_eng.close()


def bench_resilience(matrix, ctx, rounds: int) -> dict:
    """Happy-path cost of the resilience layer: plain vs. hardened engine.

    Both competitors run on the real process backend; the hardened one adds
    retries (``max_attempts=3``), degraded fallback and a 30 s deadline —
    exactly the bookkeeping a production caller would enable — while zero
    faults are injected (``REPRO_BACKEND_FAULTS`` is stripped so the chaos
    wrapper never engages).  Each timed sample is a batch of
    ``RESILIENCE_CALLS`` multiplies to keep the ratio out of timer noise.
    The resilient engine's ``health_stats()`` ride along as proof that no
    retry/fallback/deadline machinery actually fired during the phase.
    """
    x = dense_frontier(matrix.ncols, 2, seed=31)
    faults = os.environ.pop("REPRO_BACKEND_FAULTS", None)
    try:
        base = ctx.with_backend("process", workers=WORKERS)
        plain = ShardedEngine(matrix, SHARDS, base, algorithm="bucket")
        resilient = ShardedEngine(
            matrix, SHARDS,
            base.with_retry(RetryPolicy(max_attempts=3, backoff_s=0.01),
                            degraded_fallback=True).with_deadline(30.0),
            algorithm="bucket")
        try:
            runs = {
                "plain": lambda: [plain.multiply(x)
                                  for _ in range(RESILIENCE_CALLS)],
                "resilient": lambda: [resilient.multiply(x)
                                      for _ in range(RESILIENCE_CALLS)],
            }
            for fn in runs.values():
                fn()  # warm workspaces and both pools
            best = time_best_interleaved(runs, rounds)
            best["health"] = resilient.health_stats()
        finally:
            plain.close()
            resilient.close()
    finally:
        if faults is not None:
            os.environ["REPRO_BACKEND_FAULTS"] = faults
    return best


def audit_comm(matrix, ctx) -> dict:
    """Untimed comm-plane audit: new vs. legacy pipe bytes for one graph.

    Runs a few dense-frontier multiplies and one fused ``multiply_many``
    batch on a fresh process-backed engine with the backend's legacy-plane
    audit enabled, then reads the backend's comm counters.  The audit
    pickles the exact PR-5-shaped messages (input vector + per-strip result
    triples) without sending them, so the "before" numbers are measured,
    not estimated.
    """
    x = dense_frontier(matrix.ncols, 2, seed=31)
    frontiers = [dense_frontier(matrix.ncols, 8, seed=41 + i)
                 for i in range(BLOCK_K)]
    os.environ["REPRO_BACKEND_COMM_AUDIT"] = "1"
    try:
        engine = ShardedEngine(
            matrix, SHARDS, ctx.with_backend("process", workers=WORKERS),
            algorithm="bucket")
        try:
            for _ in range(AUDIT_CALLS):
                engine.multiply(x)
            engine.multiply_many(frontiers, block_mode="fused")
            comm = engine.backend.comm_stats()
        finally:
            engine.close()
    finally:
        del os.environ["REPRO_BACKEND_COMM_AUDIT"]
    calls = max(comm["calls"], 1)
    pipe = comm["pipe_bytes_out"] + comm["pipe_bytes_in"]
    legacy = comm["legacy_pipe_bytes_out"] + comm["legacy_pipe_bytes_in"]
    return {
        "calls": comm["calls"],
        "pipe_bytes_per_call": round(pipe / calls, 1),
        "pipe_bytes_out_per_call": round(comm["pipe_bytes_out"] / calls, 1),
        "pipe_bytes_in_per_call": round(comm["pipe_bytes_in"] / calls, 1),
        "legacy_pipe_bytes_per_call": round(legacy / calls, 1),
        "slab_bytes_in_per_call": round(comm["slab_bytes_in"] / calls, 1),
        "slab_bytes_out_per_call": round(comm["slab_bytes_out"] / calls, 1),
        "output_overflows": comm["output_overflows"],
        "input_grows": comm["input_grows"],
        "output_grows": comm["output_grows"],
        "reduction": round(legacy / pipe, 2) if pipe else float("inf"),
    }


def run(quick: bool, threads: int, rounds: int,
        require_cores: int = 0) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ctx = default_context(num_threads=threads, backend="emulated")
    cores = os.cpu_count() or 1
    report = {
        "benchmark": "process_backend",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "shards": SHARDS,
        "workers": WORKERS,
        "cpu_cores": cores,
        "require_cores": require_cores or None,
        "gate": {"multiply_min_speedup": GATE_MULTIPLY_SPEEDUP,
                 "multiply_many_min_speedup": GATE_MANY_SPEEDUP,
                 "column_scheme_min_speedup": GATE_COLUMN_SCHEME,
                 "resilience_min_speedup": GATE_RESILIENCE_MIN,
                 "comm_min_reduction": GATE_COMM_REDUCTION,
                 "min_cores": GATE_MIN_CORES},
        "graphs": [],
        "results": [],
        "comm": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        mm = bench_multiply(matrix, ctx, rounds)
        report["results"].append({
            "graph": name, "workload": "multiply", "shards": SHARDS,
            "frontier_nnz": max(64, matrix.ncols // 2),
            "emulated_ms": round(mm["emulated"], 4),
            "process_ms": round(mm["process"], 4),
            "pool_setup_ms": round(mm["setup_ms"], 4),
            "speedup": round(mm["emulated"] / mm["process"], 4)
            if mm["process"] > 0 else float("inf"),
        })
        many = bench_multiply_many(matrix, ctx, max(1, rounds // 2))
        report["results"].append({
            "graph": name, "workload": "multiply_many", "shards": SHARDS,
            "k": BLOCK_K, "frontier_nnz": max(64, matrix.ncols // 8),
            "monolithic_ms": round(many["monolithic"], 4),
            "process_ms": round(many["process"], 4),
            "speedup": round(many["monolithic"] / many["process"], 4)
            if many["process"] > 0 else float("inf"),
        })
        col = bench_column_scheme(matrix, ctx, max(1, rounds // 2))
        report["results"].append({
            "graph": name, "workload": "column_scheme", "shards": SHARDS,
            "frontier_nnz": max(64, matrix.ncols // COLUMN_SCHEME_DIVISOR),
            "row_ms": round(col["row"], 4),
            "column_ms": round(col["column"], 4),
            "speedup": round(col["row"] / col["column"], 4)
            if col["column"] > 0 else float("inf"),
        })
        res = bench_resilience(matrix, ctx, max(1, rounds // 2))
        health = res["health"]
        report["results"].append({
            "graph": name, "workload": "resilience", "shards": SHARDS,
            "calls_per_sample": RESILIENCE_CALLS,
            "plain_ms": round(res["plain"], 4),
            "resilient_ms": round(res["resilient"], 4),
            "overhead_pct": round((res["resilient"] / res["plain"] - 1.0)
                                  * 100.0, 2) if res["plain"] > 0 else None,
            # the phase is honest only if nothing actually failed
            "zero_faults": (not any(health["worker_deaths"])
                            and health["retries"] == 0
                            and health["fallback_calls"] == 0
                            and health["deadline_hits"] == 0),
            "speedup": round(res["plain"] / res["resilient"], 4)
            if res["resilient"] > 0 else float("inf"),
        })
        report["comm"].append(dict(graph=name, **audit_comm(matrix, ctx)))

    gates = {}
    core_gated_ok = cores >= GATE_MIN_CORES or (
        require_cores and cores < require_cores)  # shortfall fails below
    for workload, floor in (("multiply", GATE_MULTIPLY_SPEEDUP),
                            ("multiply_many", GATE_MANY_SPEEDUP),
                            ("column_scheme", GATE_COLUMN_SCHEME),
                            ("resilience", GATE_RESILIENCE_MIN)):
        speedups = [r["speedup"] for r in report["results"]
                    if r["workload"] == workload]
        gates[workload] = {
            "min_speedup": min(speedups) if speedups else None,
            "floor": floor,
        }
        if cores >= GATE_MIN_CORES:
            gates[workload]["passed"] = bool(speedups and
                                             min(speedups) >= floor)
        elif require_cores and cores < require_cores:
            # the runner was supposed to have cores: hard-fail, don't skip
            gates[workload]["passed"] = False
            gates[workload]["failed_reason"] = (
                f"--require-cores {require_cores} but machine has {cores}")
        else:
            gates[workload]["skipped"] = (
                f"machine has {cores} core(s); P={WORKERS} workers need "
                f">= {GATE_MIN_CORES} for wall-clock parallelism")
            gates[workload]["passed"] = None
    reductions = [c["reduction"] for c in report["comm"]]
    gates["comm"] = {
        "min_reduction": min(reductions) if reductions else None,
        "floor": GATE_COMM_REDUCTION,
        "passed": bool(reductions and min(reductions) >= GATE_COMM_REDUCTION),
    }
    evaluated = [g["passed"] for g in gates.values() if g["passed"] is not None]
    report["summary"] = {
        "gates": gates,
        # null (not true!) when every gate was skipped: a skip is not a pass
        "check_passed": all(evaluated) if evaluated else None,
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'workload':<14} {'baseline':<11} " \
             f"{'baseline ms':>12} {'process ms':>11} {'speedup':>8}"
    columns = {"multiply": ("emulated", "process_ms"),
               "multiply_many": ("monolithic", "process_ms"),
               "column_scheme": ("row", "column_ms"),
               "resilience": ("plain", "resilient_ms")}
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        baseline, process_key = columns[r["workload"]]
        print(f"{r['graph']:<16} {r['workload']:<14} {baseline:<11} "
              f"{r[baseline + '_ms']:>12.3f} {r[process_key]:>11.3f} "
              f"{r['speedup']:>7.2f}x")
    print()
    for c in report["comm"]:
        print(f"{c['graph']:<16} comm: {c['legacy_pipe_bytes_per_call']:>11,.0f} "
              f"pipe B/call legacy -> {c['pipe_bytes_per_call']:>9,.0f} now "
              f"({c['reduction']:.1f}x less; "
              f"{c['slab_bytes_in_per_call'] + c['slab_bytes_out_per_call']:,.0f} "
              f"B/call via /dev/shm, {c['output_overflows']} overflow retries)")
    for workload, gate in report["summary"]["gates"].items():
        if gate.get("skipped"):
            measured = gate.get("min_speedup")
            print(f"{workload} gate SKIPPED: {gate['skipped']} "
                  f"(measured min {measured}x)")
        elif "min_reduction" in gate:
            print(f"min comm reduction: {gate['min_reduction']}x "
                  f"(floor {gate['floor']}x, passed: {gate['passed']})")
        else:
            print(f"min {workload} speedup: {gate['min_speedup']} "
                  f"(floor {gate['floor']}x, passed: {gate['passed']}"
                  + (f", {gate['failed_reason']}" if gate.get("failed_reason")
                     else "") + ")")
    print(f"regression check passed: {report['summary']['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: the RMAT suite at scale 13")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every evaluated gate passed "
                             "(speedup gates skip below "
                             f"{GATE_MIN_CORES} cores unless --require-cores; "
                             "the comm-reduction gate always evaluates)")
    parser.add_argument("--require-cores", type=int, default=0, metavar="N",
                        help="hard-fail (instead of skipping the speedup "
                             "gates) when the machine has fewer than N "
                             "cores — for runners that are supposed to "
                             "have them")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread budget of the shared context (the "
                             "emulated backend schedules strips onto them "
                             "in-process; the process backend maps them to "
                             "real workers)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 5 quick / 7 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_process_backend.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (5 if args.quick else 7)
    report = run(args.quick, args.threads, rounds,
                 require_cores=args.require_cores)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and report["summary"]["check_passed"] is False:
        print(f"FAIL: process-backend regression gate not met "
              f"(multiply >= {GATE_MULTIPLY_SPEEDUP}x emulated, fused "
              f"multiply_many >= {GATE_MANY_SPEEDUP}x monolithic at "
              f"P={SHARDS}, column scheme >= {GATE_COLUMN_SCHEME}x row at "
              f"a sparse frontier, resilience-on >= {GATE_RESILIENCE_MIN}x "
              f"plain with zero faults, comm reduction >= "
              f"{GATE_COMM_REDUCTION}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
