"""Process-vs-emulated backend perf-regression harness.

Measures the wall-clock effect of running the sharded engine's per-strip
kernel calls on the real ``multiprocessing`` worker pool
(:class:`~repro.parallel.backends.ProcessBackend` — strips in shared memory,
one persistent worker per strip slot) instead of the deterministic
in-process emulation (:class:`~repro.parallel.backends.EmulatedBackend`),
across the RMAT suite graphs.  Two workloads per graph, both at P=4 strips
and 4 workers:

* ``multiply`` — a dense BFS-shaped frontier through the sharded engine on
  each backend (the primitive itself; gated at >= 1.3x process-vs-emulated);
* ``multiply_many`` — k=8 fused frontiers: the monolithic fused engine vs
  the process-backed sharded fused path.  This is the ROADMAP's single-core
  caveat — sharded fusion pays P x block-expansion overhead that only real
  cores can win back — so the gate is that the process backend is **no
  longer slower than monolithic** (>= 1.0x).

Wall-clock parallelism needs hardware: on machines with fewer than
``GATE_MIN_CORES`` physical cores the numbers are still measured and
reported honestly, but the gates are recorded as skipped (a 1-core machine
cannot exhibit a multi-process speedup, only IPC overhead) and ``--check``
exits 0.  CI runs this on >= 4-core runners, where the gates bite.

Results are printed as a table and written to ``BENCH_process_backend.json``.
Exit status is the regression gate used by CI:

    python benchmarks/bench_process_backend.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ShardedEngine, SpMSpVEngine
from repro.formats import SparseVector
from repro.graphs import build_problem
from repro.parallel import default_context

REPO_ROOT = Path(__file__).resolve().parent.parent

#: RMAT suite problems (low-diameter scale-free class) and their bench scales
FULL_GRAPHS = [("ljournal-like", 14), ("webgoogle-like", 14)]
QUICK_GRAPHS = [("ljournal-like", 13), ("webgoogle-like", 13)]

SHARDS = 4
WORKERS = 4
BLOCK_K = 8

#: gates need real cores: P=4 workers cannot beat one in-process loop on
#: fewer than 4 of them, so below this the gates are reported as skipped
GATE_MIN_CORES = 4
#: sharded multiply on the process backend vs the emulated backend
GATE_MULTIPLY_SPEEDUP = 1.3
#: sharded fused multiply_many on the process backend vs the monolithic
#: fused engine (the ROADMAP caveat: "no longer slower than monolithic")
GATE_MANY_SPEEDUP = 1.0


def dense_frontier(n: int, divisor: int, seed: int) -> SparseVector:
    rng = np.random.default_rng(seed)
    nnz = max(64, n // divisor)
    idx = np.sort(rng.choice(n, size=min(nnz, n), replace=False))
    return SparseVector(n, idx, rng.random(len(idx)) + 0.1)


def time_best_interleaved(fns: dict, rounds: int) -> dict:
    """Best-of-N for several competitors, rounds interleaved (stable ratios)."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], (time.perf_counter() - t0) * 1e3)
    return best


def bench_multiply(matrix, ctx, rounds: int) -> dict:
    x = dense_frontier(matrix.ncols, 2, seed=31)
    emulated = ShardedEngine(matrix, SHARDS, ctx, algorithm="bucket")
    t0 = time.perf_counter()
    process = ShardedEngine(
        matrix, SHARDS, ctx.with_backend("process", workers=WORKERS),
        algorithm="bucket")
    setup_ms = (time.perf_counter() - t0) * 1e3
    try:
        runs = {
            "emulated": lambda: emulated.multiply(x),
            "process": lambda: process.multiply(x),
        }
        for fn in runs.values():
            fn()  # warm workspaces and the pool
        best = time_best_interleaved(runs, rounds)
    finally:
        process.close()
    best["setup_ms"] = setup_ms
    return best


def bench_multiply_many(matrix, ctx, rounds: int) -> dict:
    frontiers = [dense_frontier(matrix.ncols, 8, seed=41 + i)
                 for i in range(BLOCK_K)]
    monolithic = SpMSpVEngine(matrix, ctx, algorithm="bucket")
    process = ShardedEngine(
        matrix, SHARDS, ctx.with_backend("process", workers=WORKERS),
        algorithm="bucket")
    try:
        runs = {
            "monolithic": lambda: monolithic.multiply_many(
                frontiers, block_mode="fused"),
            "process": lambda: process.multiply_many(
                frontiers, block_mode="fused"),
        }
        for fn in runs.values():
            fn()
        return time_best_interleaved(runs, rounds)
    finally:
        process.close()


def run(quick: bool, threads: int, rounds: int) -> dict:
    graphs = QUICK_GRAPHS if quick else FULL_GRAPHS
    ctx = default_context(num_threads=threads, backend="emulated")
    cores = os.cpu_count() or 1
    report = {
        "benchmark": "process_backend",
        "quick": quick,
        "num_threads": threads,
        "rounds": rounds,
        "shards": SHARDS,
        "workers": WORKERS,
        "cpu_cores": cores,
        "gate": {"multiply_min_speedup": GATE_MULTIPLY_SPEEDUP,
                 "multiply_many_min_speedup": GATE_MANY_SPEEDUP,
                 "min_cores": GATE_MIN_CORES},
        "graphs": [],
        "results": [],
    }
    for name, scale in graphs:
        graph = build_problem(name, scale)
        matrix = graph.matrix
        report["graphs"].append({"name": name, "scale": scale,
                                 "vertices": matrix.ncols, "edges": matrix.nnz})
        mm = bench_multiply(matrix, ctx, rounds)
        report["results"].append({
            "graph": name, "workload": "multiply", "shards": SHARDS,
            "frontier_nnz": max(64, matrix.ncols // 2),
            "emulated_ms": round(mm["emulated"], 4),
            "process_ms": round(mm["process"], 4),
            "pool_setup_ms": round(mm["setup_ms"], 4),
            "speedup": round(mm["emulated"] / mm["process"], 4)
            if mm["process"] > 0 else float("inf"),
        })
        many = bench_multiply_many(matrix, ctx, max(1, rounds // 2))
        report["results"].append({
            "graph": name, "workload": "multiply_many", "shards": SHARDS,
            "k": BLOCK_K, "frontier_nnz": max(64, matrix.ncols // 8),
            "monolithic_ms": round(many["monolithic"], 4),
            "process_ms": round(many["process"], 4),
            "speedup": round(many["monolithic"] / many["process"], 4)
            if many["process"] > 0 else float("inf"),
        })

    gates = {}
    for workload, floor in (("multiply", GATE_MULTIPLY_SPEEDUP),
                            ("multiply_many", GATE_MANY_SPEEDUP)):
        speedups = [r["speedup"] for r in report["results"]
                    if r["workload"] == workload]
        gates[workload] = {
            "min_speedup": min(speedups) if speedups else None,
            "floor": floor,
        }
        if cores < GATE_MIN_CORES:
            gates[workload]["skipped"] = (
                f"machine has {cores} core(s); P={WORKERS} workers need "
                f">= {GATE_MIN_CORES} for wall-clock parallelism")
            gates[workload]["passed"] = None
        else:
            gates[workload]["passed"] = bool(speedups and
                                             min(speedups) >= floor)
    report["summary"] = {
        "gates": gates,
        "check_passed": all(g["passed"] is not False for g in gates.values()),
    }
    return report


def print_table(report: dict) -> None:
    header = f"{'graph':<16} {'workload':<14} {'baseline':<11} " \
             f"{'baseline ms':>12} {'process ms':>11} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in report["results"]:
        baseline = "emulated" if r["workload"] == "multiply" else "monolithic"
        print(f"{r['graph']:<16} {r['workload']:<14} {baseline:<11} "
              f"{r[baseline + '_ms']:>12.3f} {r['process_ms']:>11.3f} "
              f"{r['speedup']:>7.2f}x")
    for workload, gate in report["summary"]["gates"].items():
        if gate.get("skipped"):
            print(f"{workload} gate SKIPPED: {gate['skipped']} "
                  f"(measured min {gate['min_speedup']}x)")
        else:
            print(f"min {workload} speedup: {gate['min_speedup']} "
                  f"(floor {gate['floor']}x, passed: {gate['passed']})")
    print(f"regression check passed: {report['summary']['check_passed']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: the RMAT suite at scale 13")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the process backend is >= 1.3x "
                             "the emulated backend on sharded multiply and "
                             ">= 1.0x monolithic on fused multiply_many at "
                             "P=4 (gates skip below "
                             f"{GATE_MIN_CORES} cores)")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread budget of the shared context (the "
                             "emulated backend schedules strips onto them "
                             "in-process; the process backend maps them to "
                             "real workers)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing repetitions (best-of); default 5 quick / 7 full")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_process_backend.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (5 if args.quick else 7)
    report = run(args.quick, args.threads, rounds)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print_table(report)
    print(f"\nwrote {args.out}")
    if args.check and not report["summary"]["check_passed"]:
        print(f"FAIL: process-backend regression gate (multiply >= "
              f"{GATE_MULTIPLY_SPEEDUP}x emulated, fused multiply_many >= "
              f"{GATE_MANY_SPEEDUP}x monolithic at P={SHARDS}) not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
