"""Legacy setup shim.

The environment this reproduction targets has no ``wheel`` package and no
network access, so PEP-660 editable installs (``pip install -e .``) cannot
build a wheel.  ``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
where wheel is available) installs the package from ``src/`` instead.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
